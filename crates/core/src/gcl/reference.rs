//! The pre-packed GCL compiler, retained as an executable reference.
//!
//! This is the original `Valuation`-based pipeline: every state of the
//! full domain product is decoded into a per-state `Vec<usize>`, guards
//! and effects run on that decoded vector, the successor is re-encoded,
//! and [`Program::compile_fair`] performs one additional full-space sweep
//! per command. It exists for the same two reasons as
//! [`crate::reference`]:
//!
//! * **cross-validation** — the differential suites compile seeded random
//!   programs (and the real TME abstraction) with both compilers and
//!   assert identical [`FiniteSystem`]s and verdicts;
//! * **benchmarking** — `graybox-bench` times this compiler as the
//!   baseline for the packed streaming pipeline (`gcl_compile/*` in
//!   `BENCH_core.json`).
//!
//! Nothing outside tests and benches should depend on this module; new
//! models should use the packed [`super::Program`].

use std::fmt;
use std::ops::{Index, IndexMut};

use super::{GclError, VarRef, DEFAULT_MAX_STATES};
use crate::fairness::FairComposition;
use crate::FiniteSystem;

/// An assignment of a value to every program variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Valuation(Vec<usize>);

impl Valuation {
    /// The raw values, indexed by declaration order.
    pub fn values(&self) -> &[usize] {
        &self.0
    }
}

impl Index<VarRef> for Valuation {
    type Output = usize;
    fn index(&self, var: VarRef) -> &usize {
        &self.0[var.index()]
    }
}

impl IndexMut<VarRef> for Valuation {
    fn index_mut(&mut self, var: VarRef) -> &mut usize {
        &mut self.0[var.index()]
    }
}

type Guard = Box<dyn Fn(&Valuation) -> bool>;
type Effect = Box<dyn Fn(&mut Valuation)>;

struct Command {
    name: String,
    guard: Guard,
    effect: Effect,
}

impl fmt::Debug for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Command").field("name", &self.name).finish()
    }
}

/// A guarded-command program in the original decode/encode representation.
#[derive(Debug, Default)]
pub struct Program {
    vars: Vec<(String, usize)>,
    commands: Vec<Command>,
    max_states: Option<usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program {
            vars: Vec::new(),
            commands: Vec::new(),
            max_states: None,
        }
    }

    /// Declares a variable with domain `0..domain` and returns its handle.
    pub fn var(&mut self, name: impl Into<String>, domain: usize) -> VarRef {
        self.vars.push((name.into(), domain));
        VarRef::new(self.vars.len() - 1)
    }

    /// Adds a guarded command `name :: guard → effect`.
    pub fn command(
        &mut self,
        name: impl Into<String>,
        guard: impl Fn(&Valuation) -> bool + 'static,
        effect: impl Fn(&mut Valuation) + 'static,
    ) {
        self.commands.push(Command {
            name: name.into(),
            guard: Box::new(guard),
            effect: Box::new(effect),
        });
    }

    /// Overrides the state-space cap (default [`DEFAULT_MAX_STATES`]).
    pub fn max_states(&mut self, max: usize) -> &mut Self {
        self.max_states = Some(max);
        self
    }

    /// Number of declared commands.
    pub fn num_commands(&self) -> usize {
        self.commands.len()
    }

    fn state_count(&self) -> Result<usize, GclError> {
        let mut total = 1usize;
        for (name, domain) in &self.vars {
            if *domain == 0 {
                return Err(GclError::EmptyDomain { var: name.clone() });
            }
            total = total.checked_mul(*domain).ok_or(GclError::TooManyStates {
                actual: usize::MAX,
                max: self.max_states.unwrap_or(DEFAULT_MAX_STATES),
            })?;
        }
        let max = self.max_states.unwrap_or(DEFAULT_MAX_STATES);
        if total > max {
            return Err(GclError::TooManyStates { actual: total, max });
        }
        Ok(total)
    }

    fn decode(&self, mut state: usize) -> Valuation {
        let mut values = Vec::with_capacity(self.vars.len());
        for (_, domain) in &self.vars {
            values.push(state % domain);
            state /= domain;
        }
        Valuation(values)
    }

    fn encode(&self, valuation: &Valuation) -> Result<usize, GclError> {
        let mut state = 0usize;
        for ((_, domain), &value) in self.vars.iter().zip(&valuation.0).rev() {
            if value >= *domain {
                return Err(GclError::OutOfDomain {
                    command: String::new(),
                });
            }
            state = state * domain + value;
        }
        Ok(state)
    }

    /// Compiles to the pure path-set system: from each state, every enabled
    /// command contributes an edge; states with no enabled command stutter.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile(&self, init: impl Fn(&Valuation) -> bool) -> Result<CompiledProgram, GclError> {
        let total = self.state_count()?;
        let mut builder = FiniteSystem::builder(total);
        let mut any_init = false;
        for state in 0..total {
            let valuation = self.decode(state);
            if init(&valuation) {
                builder = builder.initial(state);
                any_init = true;
            }
            let mut enabled = false;
            for command in &self.commands {
                if (command.guard)(&valuation) {
                    enabled = true;
                    let mut next = valuation.clone();
                    (command.effect)(&mut next);
                    let encoded = self.encode(&next).map_err(|_| GclError::OutOfDomain {
                        command: command.name.clone(),
                    })?;
                    builder = builder.edge(state, encoded);
                }
            }
            if !enabled {
                builder = builder.edge(state, state);
            }
        }
        if !any_init {
            return Err(GclError::NoInitialState);
        }
        Ok(CompiledProgram {
            system: builder.build()?,
            var_info: self.vars.clone(),
        })
    }

    /// Compiles to UNITY's weakly fair execution model: one component per
    /// command, where a disabled command executes as a skip, composed via
    /// [`FairComposition`]. One additional full-space sweep runs per
    /// command (the cost the packed pipeline folds into a single sweep).
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile_fair(
        &self,
        init: impl Fn(&Valuation) -> bool,
    ) -> Result<(FairComposition, CompiledProgram), GclError> {
        let compiled = self.compile(&init)?;
        let total = compiled.system.num_states();
        let mut components = Vec::with_capacity(self.commands.len());
        for command in &self.commands {
            let mut builder = FiniteSystem::builder(total);
            for state in 0..total {
                let valuation = self.decode(state);
                if init(&valuation) {
                    builder = builder.initial(state);
                }
                if (command.guard)(&valuation) {
                    let mut next = valuation.clone();
                    (command.effect)(&mut next);
                    let encoded = self.encode(&next).map_err(|_| GclError::OutOfDomain {
                        command: command.name.clone(),
                    })?;
                    builder = builder.edge(state, encoded);
                } else {
                    builder = builder.edge(state, state);
                }
            }
            components.push(builder.build()?);
        }
        let fair = FairComposition::new(components).map_err(GclError::System)?;
        Ok((fair, compiled))
    }
}

/// The result of compiling a [`Program`]: the system plus enough metadata
/// to decode states back into variable valuations.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    system: FiniteSystem,
    var_info: Vec<(String, usize)>,
}

impl CompiledProgram {
    /// The compiled transition system.
    pub fn system(&self) -> &FiniteSystem {
        &self.system
    }

    /// Decodes a state index into a valuation (declaration order).
    pub fn decode(&self, mut state: usize) -> Vec<usize> {
        let mut values = Vec::with_capacity(self.var_info.len());
        for (_, domain) in &self.var_info {
            values.push(state % domain);
            state /= domain;
        }
        values
    }

    /// Variable names in declaration order.
    pub fn var_names(&self) -> Vec<&str> {
        self.var_info
            .iter()
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_program_compiles() {
        let mut p = Program::new();
        let x = p.var("x", 4);
        p.command("inc", move |s| s[x] < 3, move |s| s[x] += 1);
        let compiled = p.compile(|s| s[x] == 0).unwrap();
        assert_eq!(compiled.system().num_states(), 4);
        assert!(compiled.system().has_edge(0, 1));
        assert!(compiled.system().has_edge(3, 3)); // quiescent
        assert_eq!(compiled.system().init().len(), 1);
    }

    #[test]
    fn two_variable_encoding_round_trips() {
        let mut p = Program::new();
        let x = p.var("x", 3);
        let y = p.var("y", 5);
        p.command("noop", |_| false, |_| {});
        let compiled = p.compile(|_| true).unwrap();
        assert_eq!(compiled.system().num_states(), 15);
        for state in 0..15 {
            let vals = compiled.decode(state);
            assert!(vals[x.index()] < 3 && vals[y.index()] < 5);
        }
        assert_eq!(compiled.var_names(), vec!["x", "y"]);
    }

    #[test]
    fn out_of_domain_effect_is_reported() {
        let mut p = Program::new();
        let x = p.var("x", 2);
        p.command("overflow", |_| true, move |s| s[x] = 7);
        let err = p.compile(|_| true).unwrap_err();
        assert_eq!(
            err,
            GclError::OutOfDomain {
                command: "overflow".into()
            }
        );
    }

    #[test]
    fn state_cap_is_enforced() {
        let mut p = Program::new();
        p.var("x", 100);
        p.var("y", 100);
        p.command("noop", |_| false, |_| {});
        p.max_states(50);
        assert!(matches!(
            p.compile(|_| true).unwrap_err(),
            GclError::TooManyStates {
                actual: 10000,
                max: 50
            }
        ));
    }

    #[test]
    fn fair_compilation_has_one_component_per_command() {
        let mut p = Program::new();
        let x = p.var("x", 2);
        p.command("flip", move |s| s[x] == 0, move |s| s[x] = 1);
        p.command("flop", move |s| s[x] == 1, move |s| s[x] = 0);
        let (fair, compiled) = p.compile_fair(|s| s[x] == 0).unwrap();
        assert_eq!(fair.components().len(), 2);
        assert!(fair.components()[0].has_edge(1, 1));
        assert!(fair.components()[0].has_edge(0, 1));
        assert!(compiled.system().edges().is_subset(fair.union().edges()));
    }
}
