//! Symmetry quotient over the packed mixed-radix state word.
//!
//! A [`SymmetrySpec`] is a finite permutation group acting on a
//! [`Program`](super::Program)'s packed states: each element permutes the
//! variables (and optionally relabels values, e.g. the `ord` ground-truth
//! permutation index of the TME model) and correspondingly permutes the
//! commands. The *canonical form* of a state is the lexicographically
//! smallest packed word in its orbit, so interning canonical
//! representatives only cuts the state space by up to the group order
//! (`n!` for the n-process TME model).
//!
//! The quotient is **verdict-exact** for the streaming stabilization
//! check ([`Program::fair_self_check_sym`]) — not merely
//! reachability-preserving — via a holonomy-annotated sweep: every
//! canonical state carries the group element relating it to a reference
//! "sheet" (a full-space SCC), non-tree quotient edges contribute
//! *defect* generators of the sheet's stabilizer, and per-SCC command
//! presence is closed under conjugation by those defects. DESIGN.md §13
//! develops the soundness argument; `tests/reduction_differential.rs`
//! and the TME n=2/n=3 equality tests enforce it bit-for-bit against the
//! unreduced oracle.

use std::collections::HashMap;
use std::ops::Range;

use crate::bitset::StateSet;
use crate::par::{self, U32Graph};
use crate::sweep::{chunk_ranges, join_all};
use crate::SystemError;

use super::{narrow, tarjan_u32, GclError, Layout, Program, State, CHUNK_ALIGN};

/// One group element of a program symmetry, in caller-facing form.
///
/// The element `g` maps a state `w` to the state `g·w` defined by
/// `(g·w)[var_perm[i]] = value_maps[i](w[i])` — variable `i`'s (possibly
/// relabelled) value moves to position `var_perm[i]`. A `None` value map
/// is the identity relabelling. `cmd_perm` names the command the element
/// carries each command to: equivariance means `c` is enabled at `w`
/// exactly when `cmd_perm[c]` is enabled at `g·w`, with
/// `g·c(w) = cmd_perm[c](g·w)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryElement {
    /// Where each variable's value goes: `i ↦ var_perm[i]`.
    pub var_perm: Vec<usize>,
    /// Per-variable value relabelling (`None` = identity). A `Some` map
    /// must be a permutation of `0..domain(i)`.
    pub value_maps: Vec<Option<Vec<usize>>>,
    /// Where each command goes: `c ↦ cmd_perm[c]`.
    pub cmd_perm: Vec<usize>,
}

impl SymmetryElement {
    /// The identity element for `num_vars` variables and `num_commands`
    /// commands.
    pub fn identity(num_vars: usize, num_commands: usize) -> Self {
        SymmetryElement {
            var_perm: (0..num_vars).collect(),
            value_maps: vec![None; num_vars],
            cmd_perm: (0..num_commands).collect(),
        }
    }
}

/// Why a [`SymmetrySpec`] could not be built or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetryError {
    /// No elements were supplied (a group needs at least the identity).
    Empty,
    /// Element 0 is not the identity.
    FirstNotIdentity,
    /// An element's tables are malformed (wrong arity, not a
    /// permutation, or value-map lengths inconsistent across elements).
    Malformed {
        /// Index of the offending element.
        element: usize,
    },
    /// Two supplied elements act identically.
    Duplicate {
        /// Index of the first copy.
        first: usize,
        /// Index of the second copy.
        second: usize,
    },
    /// Composing elements `g ∘ f` left the supplied set: not a group.
    NotClosed {
        /// Left factor.
        g: usize,
        /// Right factor.
        f: usize,
    },
    /// More elements than annotations can index (the group order must
    /// fit `u16`).
    TooLarge,
    /// The spec does not fit the program: a variable is permuted onto
    /// one with a different domain, or a value map has the wrong length.
    DomainMismatch {
        /// Offending element.
        element: usize,
        /// Offending variable.
        var: usize,
    },
    /// Arity mismatch against the program (variable or command counts).
    WrongProgram,
    /// A sampled state broke equivariance: `cmd_perm[c]` at `g·w` did
    /// not mirror `c` at `w`.
    NotEquivariant {
        /// Offending element.
        element: usize,
        /// Offending command.
        command: usize,
    },
}

impl std::fmt::Display for SymmetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetryError::Empty => write!(f, "a symmetry group needs at least the identity"),
            SymmetryError::FirstNotIdentity => write!(f, "element 0 must be the identity"),
            SymmetryError::Malformed { element } => {
                write!(f, "element {element} has malformed permutation tables")
            }
            SymmetryError::Duplicate { first, second } => {
                write!(f, "elements {first} and {second} act identically")
            }
            SymmetryError::NotClosed { g, f: rhs } => {
                write!(f, "composition {g} ∘ {rhs} is not in the supplied set")
            }
            SymmetryError::TooLarge => write!(f, "group order must fit u16"),
            SymmetryError::DomainMismatch { element, var } => {
                write!(
                    f,
                    "element {element} maps variable {var} across unequal domains"
                )
            }
            SymmetryError::WrongProgram => {
                write!(
                    f,
                    "spec arity does not match the program's variables/commands"
                )
            }
            SymmetryError::NotEquivariant { element, command } => write!(
                f,
                "element {element} is not a program symmetry: command {command} broke equivariance"
            ),
        }
    }
}

impl std::error::Error for SymmetryError {}

/// Canonical internal form of one element's tables, used as the key for
/// the composition table (identity value maps normalized to `None`).
type ElemKey = (Vec<u32>, Vec<Option<Vec<u32>>>, Vec<u32>);

/// A validated finite symmetry group of a [`Program`](super::Program),
/// with closure, inverse, and command-conjugation tables precomputed so
/// the quotient sweeps pay only mul-adds per image.
#[derive(Debug, Clone)]
pub struct SymmetrySpec {
    num_vars: usize,
    num_commands: usize,
    order: usize,
    /// `var_perm[g][i]`: target position of variable `i` under `g`.
    var_perm: Vec<Vec<u32>>,
    /// `var_perm_inv[g][p]`: which variable lands on position `p`.
    var_perm_inv: Vec<Vec<u32>>,
    /// `value_map[g][i]`: relabelling applied to variable `i`'s value.
    value_map: Vec<Vec<Option<Vec<u32>>>>,
    /// `cmd_perm[g][c]`: image of command `c` under `g`.
    cmd_perm: Vec<Vec<u32>>,
    /// `compose[g * order + f]` = the element acting as `g ∘ f`
    /// (`(g ∘ f)·w = g·(f·w)`).
    compose: Vec<u16>,
    /// `inverse[g]` = the element acting as `g⁻¹`.
    inverse: Vec<u16>,
}

/// Narrows a group-element index to the `u16` annotation space. In range
/// by construction: [`SymmetrySpec::new`] rejects orders beyond `u16`.
#[inline]
#[allow(clippy::cast_possible_truncation)]
fn elem16(g: usize) -> u16 {
    g as u16
}

impl SymmetrySpec {
    /// Builds a spec from explicit elements. Element 0 must be the
    /// identity; the set must be closed under composition (it is then a
    /// group, since the actions are injective).
    ///
    /// # Errors
    ///
    /// See [`SymmetryError`].
    pub fn new(elements: &[SymmetryElement]) -> Result<Self, SymmetryError> {
        if elements.is_empty() {
            return Err(SymmetryError::Empty);
        }
        let order = elements.len();
        if u16::try_from(order).is_err() {
            return Err(SymmetryError::TooLarge);
        }
        let num_vars = elements[0].var_perm.len();
        let num_commands = elements[0].cmd_perm.len();

        // Normalize and structurally check every element.
        let mut var_perm: Vec<Vec<u32>> = Vec::with_capacity(order);
        let mut value_map: Vec<Vec<Option<Vec<u32>>>> = Vec::with_capacity(order);
        let mut cmd_perm: Vec<Vec<u32>> = Vec::with_capacity(order);
        // The best-known domain size per variable, from `Some` maps.
        let mut dom: Vec<Option<usize>> = vec![None; num_vars];
        for (at, elem) in elements.iter().enumerate() {
            let malformed = SymmetryError::Malformed { element: at };
            if elem.var_perm.len() != num_vars
                || elem.value_maps.len() != num_vars
                || elem.cmd_perm.len() != num_commands
                || !is_permutation(&elem.var_perm, num_vars)
                || !is_permutation(&elem.cmd_perm, num_commands)
            {
                return Err(malformed);
            }
            let mut maps: Vec<Option<Vec<u32>>> = Vec::with_capacity(num_vars);
            for (i, map) in elem.value_maps.iter().enumerate() {
                match map {
                    None => maps.push(None),
                    Some(map) => {
                        if map.is_empty() || !is_permutation(map, map.len()) {
                            return Err(malformed.clone());
                        }
                        match dom[i] {
                            None => dom[i] = Some(map.len()),
                            Some(len) if len == map.len() => {}
                            Some(_) => return Err(malformed.clone()),
                        }
                        maps.push(normalize_map(map));
                    }
                }
            }
            var_perm.push(elem.var_perm.iter().map(|&i| narrow32(i)).collect());
            value_map.push(maps);
            cmd_perm.push(elem.cmd_perm.iter().map(|&c| narrow32(c)).collect());
        }
        if var_perm[0]
            .iter()
            .enumerate()
            .any(|(i, &p)| p as usize != i)
            || cmd_perm[0]
                .iter()
                .enumerate()
                .any(|(c, &p)| p as usize != c)
            || value_map[0].iter().any(Option::is_some)
        {
            return Err(SymmetryError::FirstNotIdentity);
        }

        // Index every element by its normalized action.
        let mut index: HashMap<ElemKey, usize> = HashMap::with_capacity(order);
        for g in 0..order {
            let key = (
                var_perm[g].clone(),
                value_map[g].clone(),
                cmd_perm[g].clone(),
            );
            if let Some(&first) = index.get(&key) {
                return Err(SymmetryError::Duplicate { first, second: g });
            }
            index.insert(key, g);
        }

        // Closure (and thus the composition table): `g ∘ f` must be listed.
        let mut compose = vec![0u16; order * order];
        for g in 0..order {
            for f in 0..order {
                let mut vp = vec![0u32; num_vars];
                let mut vm: Vec<Option<Vec<u32>>> = vec![None; num_vars];
                for i in 0..num_vars {
                    let mid = var_perm[f][i] as usize;
                    vp[i] = var_perm[g][mid];
                    let composed = match (&value_map[g][mid], &value_map[f][i]) {
                        (None, None) => None,
                        (Some(outer), None) => Some(outer.clone()),
                        (None, Some(inner)) => Some(inner.clone()),
                        (Some(outer), Some(inner)) => {
                            if outer.len() != inner.len() {
                                return Err(SymmetryError::Malformed { element: g });
                            }
                            Some(inner.iter().map(|&v| outer[v as usize]).collect())
                        }
                    };
                    vm[i] = composed.and_then(normalize_map32);
                }
                let cp: Vec<u32> = (0..num_commands)
                    .map(|c| cmd_perm[g][cmd_perm[f][c] as usize])
                    .collect();
                let Some(&at) = index.get(&(vp, vm, cp)) else {
                    return Err(SymmetryError::NotClosed { g, f });
                };
                compose[g * order + f] = elem16(at);
            }
        }

        // Inverses exist in any finite set of injective actions closed
        // under composition; read them off the table.
        let mut inverse = vec![0u16; order];
        for g in 0..order {
            let inv = (0..order)
                .find(|&h| compose[h * order + g] == 0)
                .ok_or(SymmetryError::NotClosed { g, f: g })?;
            inverse[g] = elem16(inv);
        }

        let var_perm_inv = var_perm
            .iter()
            .map(|vp| {
                let mut inv = vec![0u32; num_vars];
                for (i, &p) in vp.iter().enumerate() {
                    inv[p as usize] = narrow32(i);
                }
                inv
            })
            .collect();

        Ok(SymmetrySpec {
            num_vars,
            num_commands,
            order,
            var_perm,
            var_perm_inv,
            value_map,
            cmd_perm,
            compose,
            inverse,
        })
    }

    /// The group order (number of elements, identity included).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of variables the group acts on.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of commands the group acts on.
    pub fn num_commands(&self) -> usize {
        self.num_commands
    }

    /// The image of command `c` under element `g`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn command_image(&self, g: usize, c: usize) -> usize {
        self.cmd_perm[g][c] as usize
    }

    /// The position variable `i` is carried to by element `g` — the
    /// static counterpart of [`command_image`](Self::command_image),
    /// used by certifier passes that argue "one representative pair
    /// suffices" from the group's transitivity on variable positions.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn variable_image(&self, g: usize, i: usize) -> usize {
        self.var_perm[g][i] as usize
    }

    /// `g ∘ f` as an element index (`(g ∘ f)·w = g·(f·w)`).
    pub(super) fn comp(&self, g: u16, f: u16) -> u16 {
        self.compose[g as usize * self.order + f as usize]
    }

    /// `g⁻¹` as an element index.
    pub(super) fn inv(&self, g: u16) -> u16 {
        self.inverse[g as usize]
    }

    /// The packed word of `g·w`, from `w`'s decoded values.
    pub(super) fn image(&self, layout: &Layout, values: &[u64], g: usize) -> u64 {
        let vp = &self.var_perm[g];
        let vm = &self.value_map[g];
        let mut word = 0u64;
        for (i, &v) in values.iter().enumerate() {
            let mapped = match &vm[i] {
                Some(map) => u64::from(map[narrow(v)]),
                None => v,
            };
            word += layout.strides[vp[i] as usize] * mapped;
        }
        word
    }

    /// Compares `g·w` against `w` digit-by-digit from the most
    /// significant position down, bailing at the first difference —
    /// the hot path of canonical enumeration.
    fn image_less_than_self(&self, values: &[u64], g: usize) -> bool {
        let inv = &self.var_perm_inv[g];
        let vm = &self.value_map[g];
        for p in (0..self.num_vars).rev() {
            let src = inv[p] as usize;
            let v = values[src];
            let mapped = match &vm[src] {
                Some(map) => u64::from(map[narrow(v)]),
                None => v,
            };
            if mapped != values[p] {
                return mapped < values[p];
            }
        }
        false
    }

    /// Is `w` the lexicographic minimum of its orbit? (Ties never arise:
    /// equality with the self-image does not disqualify.)
    pub(super) fn is_canonical(&self, values: &[u64]) -> bool {
        (1..self.order).all(|g| !self.image_less_than_self(values, g))
    }

    /// The canonical representative of `w`'s orbit and the smallest
    /// element index achieving it (the *canonizer* `σ`, with
    /// `σ·w = canon(w)`; identity when `w` is already canonical).
    pub(super) fn canon(&self, layout: &Layout, values: &[u64], word: u64) -> (u64, u16) {
        let mut best = word;
        let mut who = 0u16;
        for g in 1..self.order {
            let img = self.image(layout, values, g);
            if img < best {
                best = img;
                who = elem16(g);
            }
        }
        (best, who)
    }

    /// Size of `w`'s stabilizer subgroup; the orbit size is
    /// `order / stabilizer` (orbit-stabilizer).
    pub(super) fn stabilizer_size(&self, layout: &Layout, values: &[u64], word: u64) -> usize {
        (0..self.order)
            .filter(|&g| self.image(layout, values, g) == word)
            .count()
    }

    /// Checks the spec against a program: domain compatibility plus
    /// equivariance of every element on a deterministic sample of states
    /// (the whole space when it is small). The quotient sweeps *assume*
    /// equivariance; run this once per (program, spec) pair in tests.
    ///
    /// # Errors
    ///
    /// See [`SymmetryError`].
    pub fn validate(&self, program: &Program) -> Result<(), SymmetryError> {
        if self.num_vars != program.vars.len() || self.num_commands != program.commands.len() {
            return Err(SymmetryError::WrongProgram);
        }
        let layout = program.layout().map_err(|_| SymmetryError::WrongProgram)?;
        for g in 0..self.order {
            for i in 0..self.num_vars {
                let target = self.var_perm[g][i] as usize;
                let compatible = layout.domains[target] == layout.domains[i]
                    && match &self.value_map[g][i] {
                        Some(map) => map.len() as u64 == layout.domains[i],
                        None => true,
                    };
                if !compatible {
                    return Err(SymmetryError::DomainMismatch { element: g, var: i });
                }
            }
        }

        // Sampled equivariance: stride through the space so small
        // programs are checked exhaustively.
        const SAMPLES: usize = 2048;
        let total = narrow(layout.total);
        let step = (total / SAMPLES).max(1);
        let mut view = State::new(&layout);
        let mut image_view = State::new(&layout);
        let mut probe = State::new(&layout);
        let mut state = 0usize;
        while state < total {
            view.load(state as u64);
            for g in 1..self.order {
                let image = self.image(&layout, &view.values, g);
                image_view.load(image);
                for (c, command) in program.commands.iter().enumerate() {
                    let c2 = self.cmd_perm[g][c] as usize;
                    let here = command.enabled(&view);
                    let there = program.commands[c2].enabled(&image_view);
                    if here != there {
                        return Err(SymmetryError::NotEquivariant {
                            element: g,
                            command: c,
                        });
                    }
                    if !here {
                        continue;
                    }
                    view.begin_effect();
                    command.apply(&mut view);
                    let target = view.finish_effect();
                    image_view.begin_effect();
                    program.commands[c2].apply(&mut image_view);
                    let image_target = image_view.finish_effect();
                    let agree = match (target, image_target) {
                        (Ok(t), Ok(t2)) => {
                            probe.load(t);
                            self.image(&layout, &probe.values, g) == t2
                        }
                        (Err(()), Err(())) => true,
                        _ => false,
                    };
                    if !agree {
                        return Err(SymmetryError::NotEquivariant {
                            element: g,
                            command: c,
                        });
                    }
                }
            }
            state += step;
        }
        Ok(())
    }
}

/// Is `map` a permutation of `0..len`?
fn is_permutation(map: &[usize], len: usize) -> bool {
    let mut seen = vec![false; len];
    map.len() == len
        && map
            .iter()
            .all(|&v| v < len && !std::mem::replace(&mut seen[v], true))
}

/// Normalizes an already-narrowed map: the identity becomes `None`.
fn normalize_map32(map: Vec<u32>) -> Option<Vec<u32>> {
    if map.iter().enumerate().all(|(i, &v)| v as usize == i) {
        None
    } else {
        Some(map)
    }
}

/// Converts a caller map to `u32`, normalizing the identity to `None`.
fn normalize_map(map: &[usize]) -> Option<Vec<u32>> {
    if map.iter().enumerate().all(|(i, &v)| i == v) {
        None
    } else {
        Some(map.iter().map(|&v| narrow32(v)).collect())
    }
}

/// Narrows table entries to `u32`. In range by construction: variable,
/// command, and domain counts are all bounded by the packed-word layout,
/// which `validate` checks against the program.
#[inline]
#[allow(clippy::cast_possible_truncation)]
fn narrow32(v: usize) -> u32 {
    v as u32
}

/// The verdict of [`Program::fair_self_check_sym`]: the full-space
/// streaming stabilization answer, computed on the symmetry quotient.
#[derive(Debug, Clone)]
pub struct SymSelfReport {
    /// Size of the full domain product the quotient stands for.
    pub num_states: usize,
    /// Canonical representatives, ascending — the interned state space.
    pub words: Vec<u64>,
    /// Legitimate (init-reachable) **canonical** states, by index into
    /// [`words`](Self::words).
    pub legitimate: StateSet,
    /// Number of legitimate *full-space* states (orbit sizes summed) —
    /// comparable to [`FairSelfReport::num_legitimate`](super::FairSelfReport::num_legitimate).
    pub num_legitimate_full: usize,
    /// A divergent edge as **packed full-space words** `(from, to)`, or
    /// `None` when the fair composition stabilizes. The verdict (not the
    /// witness pair) matches the unreduced check.
    pub divergent_witness: Option<(u64, u64)>,
}

impl SymSelfReport {
    /// True when the fair composition is stabilizing.
    pub fn holds(&self) -> bool {
        self.divergent_witness.is_none()
    }

    /// Number of interned canonical states.
    pub fn num_canonical(&self) -> usize {
        self.words.len()
    }

    /// Number of legitimate canonical states.
    pub fn num_legitimate(&self) -> usize {
        self.legitimate.len()
    }

    /// Full states per interned state — the space cut the quotient bought.
    pub fn reduction(&self) -> f64 {
        if self.words.is_empty() {
            1.0
        } else {
            approx(self.num_states) / approx(self.words.len())
        }
    }

    /// The dense index of a canonical word, if interned.
    pub fn canonical_id(&self, word: u64) -> Option<usize> {
        self.words.binary_search(&word).ok()
    }
}

/// Lossy by design (bench/report ratios only).
#[allow(clippy::cast_precision_loss)]
fn approx(n: usize) -> f64 {
    n as f64
}

/// Panic message when a canonical successor misses the canonical list —
/// only possible when the spec is not actually a symmetry of the program.
const NOT_A_SYMMETRY: &str = "canonical successor not in the canonical enumeration — \
     the SymmetrySpec is not a symmetry of this program (run SymmetrySpec::validate)";

impl Program {
    /// The canonical representative of `state`'s orbit under `sym`, as a
    /// packed state index.
    ///
    /// # Errors
    ///
    /// See [`GclError`] (layout errors only).
    ///
    /// # Panics
    ///
    /// Panics if `state` is outside the domain product or `sym` has the
    /// wrong arity.
    pub fn canonicalize(&self, sym: &SymmetrySpec, state: usize) -> Result<usize, GclError> {
        let layout = self.layout()?;
        assert_eq!(
            sym.num_vars(),
            self.vars.len(),
            "spec/program arity mismatch"
        );
        assert!(
            (state as u64) < layout.total,
            "state outside the domain product"
        );
        let mut view = State::new(&layout);
        view.load(state as u64);
        let (word, _) = sym.canon(&layout, &view.values, view.word);
        Ok(narrow(word))
    }

    /// [`fair_self_check`](Program::fair_self_check) on the symmetry
    /// quotient: the identical stabilization verdict, interning only the
    /// canonical representative of each orbit (`total / order` states
    /// when no state has a non-trivial stabilizer).
    ///
    /// **Soundness contract** (checked by the differential suites, not
    /// at runtime): `sym` must be a symmetry of this program
    /// ([`SymmetrySpec::validate`]) and `init` must be orbit-closed
    /// (`init(w) ⟺ init(g·w)`). Under that contract
    /// [`SymSelfReport::holds`] and
    /// [`SymSelfReport::num_legitimate_full`] equal the unreduced
    /// report's answers — see DESIGN.md §13 for the holonomy argument.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn fair_self_check_sym(
        &self,
        sym: &SymmetrySpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<SymSelfReport, GclError> {
        let layout = self.layout()?;
        let workers = super::default_workers(narrow(layout.total));
        self.fair_self_check_sym_with(&layout, sym, workers, &init)
    }

    /// [`fair_self_check_sym`](Program::fair_self_check_sym) with an
    /// explicit worker count (`workers <= 1` runs fully serial). The
    /// report is identical for every worker count.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn fair_self_check_sym_on(
        &self,
        workers: usize,
        sym: &SymmetrySpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<SymSelfReport, GclError> {
        let layout = self.layout()?;
        self.fair_self_check_sym_with(&layout, sym, workers, &init)
    }

    // `as u32`/`as u16` below are in range by the post-enumeration guard
    // (canonical count and edge bound checked against `u32::MAX`) and
    // the group-order bound (`u16`, checked at spec construction).
    #[allow(clippy::cast_possible_truncation)]
    fn fair_self_check_sym_with(
        &self,
        layout: &Layout,
        sym: &SymmetrySpec,
        workers: usize,
        init: &(impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync),
    ) -> Result<SymSelfReport, GclError> {
        let total = narrow(layout.total);
        let ncmd = self.commands.len();
        if ncmd == 0 {
            return Err(GclError::System(SystemError::EmptyStateSpace));
        }
        assert_eq!(
            sym.num_vars(),
            self.vars.len(),
            "spec/program arity mismatch"
        );
        assert_eq!(sym.num_commands(), ncmd, "spec/program arity mismatch");
        let workers = workers.max(1);

        // Phase A — canonical enumeration: sharded ascending odometer
        // sweeps keep exactly the orbit minima; concatenating the chunks
        // in order yields the globally ascending canonical list.
        let chunks = chunk_ranges(total, workers, CHUNK_ALIGN);
        let enum_tasks: Vec<_> = chunks
            .iter()
            .map(|range| {
                let range = range.clone();
                move || {
                    let mut found: Vec<u64> = Vec::new();
                    let mut view = State::new(layout);
                    view.load(range.start as u64);
                    for _ in range {
                        if sym.is_canonical(&view.values) {
                            found.push(view.word);
                        }
                        view.advance();
                    }
                    found
                }
            })
            .collect();
        let mut words: Vec<u64> = Vec::new();
        for part in join_all(enum_tasks) {
            words.extend(part);
        }
        let num_canon = words.len();
        // The quotient CSR is staged in 32-bit arrays, like the
        // unreduced check's guard but against the canonical count.
        let max_edges = (num_canon as u64).saturating_mul(ncmd as u64 + 1);
        if u32::try_from(num_canon).is_err() || max_edges > u64::from(u32::MAX) {
            return Err(GclError::TooManyStates {
                actual: num_canon,
                max: narrow(u64::from(u32::MAX) / (ncmd as u64 + 1)),
            });
        }

        // Phase B — quotient union rows: per canonical state, every
        // enabled command's target canonicalized and resolved by binary
        // search, plus the skip self-loop when any command is disabled.
        let words_ref: &[u64] = &words;
        let canon_chunks = chunk_ranges(num_canon, workers, 1);
        let union_tasks: Vec<_> = canon_chunks
            .iter()
            .map(|range| {
                let range = range.clone();
                move || self.sym_union_chunk(layout, sym, words_ref, range, init)
            })
            .collect();
        let union_parts: Vec<SymUnionChunk> = join_all(union_tasks)
            .into_iter()
            .collect::<Result<_, _>>()?;
        let (off, to, init_seeds) = if union_parts.len() == 1 {
            let part = union_parts.into_iter().next().expect("one part");
            (part.off, part.to, part.init_seeds)
        } else {
            let num_edges: usize = union_parts.iter().map(|p| p.to.len()).sum();
            let mut off = vec![0u32; num_canon + 1];
            let mut to: Vec<u32> = Vec::with_capacity(num_edges);
            let mut init_seeds: Vec<usize> = Vec::new();
            for (range, part) in canon_chunks.iter().zip(union_parts) {
                let base = to.len() as u32;
                for (local, state) in range.clone().enumerate() {
                    off[state + 1] = base + part.off[local + 1];
                }
                to.extend(part.to);
                init_seeds.extend(part.init_seeds);
            }
            (off, to, init_seeds)
        };
        if init_seeds.is_empty() {
            return Err(GclError::NoInitialState);
        }

        // Phase C — legitimate canonical states: closure of the seeds
        // over the quotient union rows (exactly the canonical image of
        // the full-space closure when `init` is orbit-closed).
        let legitimate = if workers > 1 {
            par::reach(
                &U32Graph::forward(&off, &to),
                workers,
                init_seeds.iter().copied(),
                None,
                false,
            )
        } else {
            let mut legitimate = StateSet::with_capacity(num_canon);
            let mut frontier: Vec<usize> = Vec::new();
            for &seed in &init_seeds {
                if legitimate.insert(seed) {
                    frontier.push(seed);
                }
            }
            while let Some(state) = frontier.pop() {
                for &next in &to[off[state] as usize..off[state + 1] as usize] {
                    if legitimate.insert(next as usize) {
                        frontier.push(next as usize);
                    }
                }
            }
            legitimate
        };

        // Orbit-size sum: how many full states the legitimate canonical
        // set stands for (orbit-stabilizer per member).
        let legit_ids: Vec<usize> = legitimate.iter().collect();
        let sum_tasks: Vec<_> = chunk_ranges(legit_ids.len(), workers, 1)
            .into_iter()
            .map(|range| {
                let ids = &legit_ids[range];
                let legit_words = words_ref;
                move || {
                    let mut view = State::new(layout);
                    let mut sum = 0usize;
                    for &id in ids {
                        view.load(legit_words[id]);
                        sum += sym.order() / sym.stabilizer_size(layout, &view.values, view.word);
                    }
                    sum
                }
            })
            .collect();
        let num_legitimate_full: usize = join_all(sum_tasks).into_iter().sum();

        // Phase D — SCCs of the quotient union graph.
        let (scc_id, scc_count) = if workers > 1 {
            let (roff, rto) = par::reverse_u32(num_canon, &off, &to);
            par::fb_trim(&U32Graph::with_reverse(&off, &to, &roff, &rto), workers)
        } else {
            tarjan_u32(num_canon, &off, &to)
        };

        // Phase E — holonomy-exact command presence per quotient SCC.
        // Serial (one recompute sweep, worker-independent): each SCC is
        // walked once from its first member in canonical order; every
        // member carries the annotation `a` relating it to the root's
        // sheet, facts are conjugated into that sheet's frame, and
        // non-tree internal edges contribute stabilizer generators the
        // fact set is closed under. See DESIGN.md §13.
        let cmd_words = ncmd.div_ceil(64);
        let mut present = vec![0u32; scc_count];
        {
            const UNSET: u16 = u16::MAX;
            let mut annot: Vec<u16> = vec![UNSET; num_canon];
            let mut queue: Vec<u32> = Vec::new();
            let mut facts: Vec<u64> = vec![0u64; cmd_words];
            let mut gen_seen = vec![false; sym.order()];
            let mut gens: Vec<u16> = Vec::new();
            let mut view = State::new(layout);
            let mut probe = State::new(layout);
            for root in 0..num_canon {
                if annot[root] != UNSET {
                    continue;
                }
                let scc = scc_id[root];
                facts.iter_mut().for_each(|w| *w = 0);
                for flag in gens.drain(..) {
                    gen_seen[flag as usize] = false;
                }
                annot[root] = 0;
                queue.clear();
                queue.push(root as u32);
                let mut head = 0usize;
                while head < queue.len() {
                    let s = queue[head] as usize;
                    head += 1;
                    let a_s = annot[s];
                    let frame = sym.inv(a_s);
                    view.load(words[s]);
                    for (c, command) in self.commands.iter().enumerate() {
                        if !command.enabled(&view) {
                            // Disabled ⇒ the conjugate command skips in
                            // the sheet: it acts inside.
                            let fact = sym.cmd_perm[frame as usize][c] as usize;
                            facts[fact / 64] |= 1u64 << (fact % 64);
                            continue;
                        }
                        view.begin_effect();
                        command.apply(&mut view);
                        let target = view.finish_effect().map_err(|()| self.out_of_domain(c))?;
                        probe.load(target);
                        let (canon, sigma) = sym.canon(layout, &probe.values, target);
                        let t = words.binary_search(&canon).expect(NOT_A_SYMMETRY);
                        if scc_id[t] != scc {
                            continue;
                        }
                        let fact = sym.cmd_perm[frame as usize][c] as usize;
                        facts[fact / 64] |= 1u64 << (fact % 64);
                        let carried = sym.comp(sigma, a_s);
                        if annot[t] == UNSET {
                            annot[t] = carried;
                            queue.push(t as u32);
                        } else {
                            let defect = sym.comp(sym.inv(annot[t]), carried);
                            if defect != 0 && !gen_seen[defect as usize] {
                                gen_seen[defect as usize] = true;
                                gens.push(defect);
                            }
                        }
                    }
                }
                // Close the fact set under conjugation by the defect
                // generators (closure under each generator covers its
                // whole cyclic subgroup; iterating to fixpoint covers
                // the generated holonomy group).
                let mut changed = true;
                while changed {
                    changed = false;
                    for &h in &gens {
                        for c in 0..ncmd {
                            if facts[c / 64] & (1u64 << (c % 64)) == 0 {
                                continue;
                            }
                            let c2 = sym.cmd_perm[h as usize][c] as usize;
                            if facts[c2 / 64] & (1u64 << (c2 % 64)) == 0 {
                                facts[c2 / 64] |= 1u64 << (c2 % 64);
                                changed = true;
                            }
                        }
                    }
                }
                present[scc as usize] = facts.iter().map(|w| w.count_ones()).sum::<u32>();
            }
        }

        // Phase F — divergent scan over the stored quotient CSR: first
        // hit in canonical state order, reported as full packed words.
        let ncmd32 = ncmd as u32;
        let scan_tasks: Vec<_> = canon_chunks
            .iter()
            .map(|range| {
                let range = range.clone();
                let (off, to, scc_id, present, legitimate, words) =
                    (&off, &to, &scc_id, &present, &legitimate, &words);
                move || -> Option<(u64, u64)> {
                    for state in range {
                        let id = scc_id[state];
                        if present[id as usize] != ncmd32 {
                            continue;
                        }
                        for &next in &to[off[state] as usize..off[state + 1] as usize] {
                            if scc_id[next as usize] == id
                                && !(legitimate.contains(state)
                                    && legitimate.contains(next as usize))
                            {
                                return Some((words[state], words[next as usize]));
                            }
                        }
                    }
                    None
                }
            })
            .collect();
        let divergent_witness = join_all(scan_tasks).into_iter().flatten().next();

        Ok(SymSelfReport {
            num_states: total,
            words,
            legitimate,
            num_legitimate_full,
            divergent_witness,
        })
    }

    /// Phase-B worker: quotient union rows for one slice of the
    /// canonical list, with chunk-relative 32-bit offsets.
    // Offsets and canonical ids fit `u32` by the caller's guard.
    #[allow(clippy::cast_possible_truncation)]
    fn sym_union_chunk(
        &self,
        layout: &Layout,
        sym: &SymmetrySpec,
        words: &[u64],
        range: Range<usize>,
        init: &(impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync),
    ) -> Result<SymUnionChunk, GclError> {
        let len = range.len();
        let ncmd = self.commands.len();
        let mut off = vec![0u32; len + 1];
        let mut to: Vec<u32> = Vec::with_capacity(len.saturating_mul(2));
        let mut init_seeds: Vec<usize> = Vec::new();
        let mut row: Vec<u32> = Vec::with_capacity(ncmd + 1);
        let mut view = State::new(layout);
        let mut probe = State::new(layout);
        for (local, state) in range.enumerate() {
            view.load(words[state]);
            if init(&view) {
                init_seeds.push(state);
            }
            row.clear();
            let mut any_disabled = false;
            for (index, command) in self.commands.iter().enumerate() {
                if command.enabled(&view) {
                    view.begin_effect();
                    command.apply(&mut view);
                    let target = view
                        .finish_effect()
                        .map_err(|()| self.out_of_domain(index))?;
                    probe.load(target);
                    let (canon, _) = sym.canon(layout, &probe.values, target);
                    let id = words.binary_search(&canon).expect(NOT_A_SYMMETRY);
                    row.push(id as u32);
                } else {
                    any_disabled = true;
                }
            }
            if any_disabled {
                row.push(state as u32);
            }
            row.sort_unstable();
            row.dedup();
            to.extend_from_slice(&row);
            off[local + 1] = to.len() as u32;
        }
        Ok(SymUnionChunk {
            off,
            to,
            init_seeds,
        })
    }
}

/// One chunk of the sharded quotient union sweep.
struct SymUnionChunk {
    off: Vec<u32>,
    to: Vec<u32>,
    init_seeds: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two symmetric mod-`d` counters with a coupling command; the swap
    /// of the two variables (and the two per-variable commands) is a
    /// symmetry.
    fn two_counters(d: usize) -> (Program, SymmetrySpec) {
        let mut p = Program::new();
        let x = p.var("x", d);
        let y = p.var("y", d);
        p.command(
            "bump_x",
            move |s: &State<'_>| s.get(x) < s.get(y),
            move |s: &mut State<'_>| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        p.command(
            "bump_y",
            move |s: &State<'_>| s.get(y) < s.get(x),
            move |s: &mut State<'_>| {
                let v = s.get(y);
                s.set(y, v + 1);
            },
        );
        let swap = SymmetryElement {
            var_perm: vec![1, 0],
            value_maps: vec![None, None],
            cmd_perm: vec![1, 0],
        };
        let spec = SymmetrySpec::new(&[SymmetryElement::identity(2, 2), swap]).unwrap();
        (p, spec)
    }

    #[test]
    fn spec_tables_are_a_group() {
        let (_, spec) = two_counters(3);
        assert_eq!(spec.order(), 2);
        assert_eq!(spec.comp(1, 1), 0);
        assert_eq!(spec.inv(1), 1);
        assert_eq!(spec.command_image(1, 0), 1);
    }

    #[test]
    fn rejects_non_identity_first_and_non_groups() {
        let swap = SymmetryElement {
            var_perm: vec![1, 0],
            value_maps: vec![None, None],
            cmd_perm: vec![1, 0],
        };
        assert_eq!(
            SymmetrySpec::new(std::slice::from_ref(&swap)).err(),
            Some(SymmetryError::FirstNotIdentity)
        );
        // A 3-cycle without its square is not closed.
        let cycle = SymmetryElement {
            var_perm: vec![1, 2, 0],
            value_maps: vec![None, None, None],
            cmd_perm: vec![1, 2, 0],
        };
        assert_eq!(
            SymmetrySpec::new(&[SymmetryElement::identity(3, 3), cycle]).err(),
            Some(SymmetryError::NotClosed { g: 1, f: 1 })
        );
    }

    #[test]
    fn validate_accepts_the_swap_and_rejects_an_asymmetric_twin() {
        let (p, spec) = two_counters(3);
        spec.validate(&p).unwrap();

        // Same spec against a program whose second command differs.
        let mut q = Program::new();
        let x = q.var("x", 3);
        let y = q.var("y", 3);
        q.command(
            "bump_x",
            move |s: &State<'_>| s.get(x) < s.get(y),
            move |s: &mut State<'_>| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        q.command(
            "reset_y",
            move |s: &State<'_>| s.get(y) < s.get(x),
            move |s: &mut State<'_>| s.set(y, 0),
        );
        assert!(matches!(
            spec.validate(&q),
            Err(SymmetryError::NotEquivariant { .. })
        ));
    }

    #[test]
    fn canonical_enumeration_counts_orbits() {
        let (p, spec) = two_counters(4);
        let layout = p.layout().unwrap();
        let mut view = State::new(&layout);
        let mut canonical = 0usize;
        let mut orbit_sum = 0usize;
        view.load(0);
        for _ in 0..16 {
            if spec.is_canonical(&view.values) {
                canonical += 1;
                orbit_sum += spec.order() / spec.stabilizer_size(&layout, &view.values, view.word);
            }
            view.advance();
        }
        // Orbits of the swap on a 4x4 grid: 4 fixed + 6 pairs.
        assert_eq!(canonical, 10);
        assert_eq!(orbit_sum, 16);
    }

    #[test]
    fn canonicalize_is_idempotent_and_orbit_constant() {
        let (p, spec) = two_counters(4);
        for state in 0..16usize {
            let c = p.canonicalize(&spec, state).unwrap();
            assert!(c <= state);
            assert_eq!(p.canonicalize(&spec, c).unwrap(), c);
            // swap(x, y) shares the canonical form.
            let (x, y) = (state % 4, state / 4);
            assert_eq!(p.canonicalize(&spec, y + 4 * x).unwrap(), c);
        }
    }

    #[test]
    fn sym_check_matches_the_full_check() {
        let (p, spec) = two_counters(4);
        let x = super::super::VarRef::new(0);
        let y = super::super::VarRef::new(1);
        let full = p
            .fair_self_check(move |s: &State<'_>| s.get(x) == 0 && s.get(y) == 0)
            .unwrap();
        let reduced = p
            .fair_self_check_sym(&spec, move |s: &State<'_>| s.get(x) == 0 && s.get(y) == 0)
            .unwrap();
        assert_eq!(reduced.holds(), full.holds());
        assert_eq!(reduced.num_legitimate_full, full.num_legitimate());
        assert_eq!(reduced.num_states, full.num_states);
        assert_eq!(reduced.num_canonical(), 10);
        for workers in [2, 4] {
            let par = p
                .fair_self_check_sym_on(workers, &spec, move |s: &State<'_>| {
                    s.get(x) == 0 && s.get(y) == 0
                })
                .unwrap();
            assert_eq!(par.words, reduced.words);
            assert_eq!(par.divergent_witness, reduced.divergent_witness);
            assert_eq!(par.num_legitimate_full, reduced.num_legitimate_full);
        }
    }
}
