//! A first-class expression IR for the guarded-command language.
//!
//! The closure API of [`Program::command`](super::Program::command) is
//! maximally flexible but *opaque*: a `Box<dyn Fn>` guard cannot be asked
//! which variables it reads, so none of the paper's statically checkable
//! preconditions — locality of the everywhere specification `A = ⊓ᵢ Aᵢ`
//! (Lemmas 2–3), the graybox admissibility of a wrapper (its footprint is
//! confined to spec variables, §2), interference freedom between wrapper
//! and program commands — can be certified without enumerating states.
//!
//! This module gives commands a syntax tree instead:
//!
//! * [`Expr`] — finite-domain arithmetic: variable reads, constants,
//!   table lookups (finite functions such as permutation tables),
//!   addition, truncated subtraction, and reduction mod a constant;
//! * [`Cond`] — comparisons between expressions and the boolean
//!   connectives over them;
//! * [`Stmt`] — assignment and conditional statement sequences;
//! * [`IrCommand`] — a named guarded command `guard → body`.
//!
//! The packed compiler evaluates the IR *directly* against the same
//! [`State`] view (stride tables, undo log) the closure commands use —
//! [`Program::command_ir`](super::Program::command_ir) commands compile
//! through the identical streaming sweeps, and the differential suites
//! assert IR-built and closure-built programs produce `==` systems. The
//! static passes over the IR live in the `graybox-analyze` crate.
//!
//! # Semantics
//!
//! All values are unsigned finite-domain naturals. [`Expr::Sub`] is
//! *truncated* (saturating) subtraction, `max(a - b, 0)`, the standard
//! choice over ℕ. [`Expr::Mod`] reduces by a constant modulus, so
//! `x := (x + 1) mod d` is the idiomatic cyclic increment. A lookup
//! [`Expr::Table`] with an index beyond the table is a *caller bug* and
//! panics at evaluation time; the abstract interpreter in
//! `graybox-analyze` flags indices that may go out of bounds before any
//! sweep runs. Assignments of values outside the target's domain are
//! caught by the compiler exactly as for closure commands
//! ([`GclError::OutOfDomain`](super::GclError::OutOfDomain)).
//!
//! Within a body, later statements observe earlier writes (the [`State`]
//! view applies writes immediately), matching the sequential reading of
//! Dijkstra's guarded-command assignment lists.
//!
//! # Example
//!
//! ```
//! use graybox_core::gcl::ir::{Expr, IrCommand, Stmt};
//! use graybox_core::gcl::Program;
//!
//! let mut program = Program::new();
//! let x = program.var("x", 4);
//! program.command_ir(IrCommand::new(
//!     "inc",
//!     Expr::var(x).lt(Expr::int(3)),
//!     vec![Stmt::assign(x, Expr::var(x).add(Expr::int(1)))],
//! ));
//! let compiled = program.compile(|s| s.get(x) == 0)?;
//! assert!(compiled.system().has_edge(0, 1));
//! assert!(compiled.system().has_edge(3, 3)); // quiescent stutter
//! # Ok::<(), graybox_core::gcl::GclError>(())
//! ```

use super::{State, VarRef};

/// A finite-domain arithmetic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(usize),
    /// The current value of a variable.
    Var(VarRef),
    /// `table[index]` — a finite function applied to an index expression
    /// (e.g. the permutation tables of the TME abstraction). Evaluating
    /// an index beyond the table panics; the abstract interpreter
    /// reports indices that may escape the table statically.
    Table {
        /// The index expression.
        index: Box<Expr>,
        /// The table of values, indexed `0..len`.
        values: Vec<usize>,
    },
    /// Addition over ℕ.
    Add(Box<Expr>, Box<Expr>),
    /// Truncated (saturating) subtraction over ℕ: `max(a - b, 0)`.
    Sub(Box<Expr>, Box<Expr>),
    /// Reduction modulo a constant (the constant must be nonzero; a zero
    /// modulus panics at evaluation time and is flagged statically).
    Mod(Box<Expr>, usize),
}

/// Comparison operators between two [`Expr`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less.
    Lt,
    /// At most.
    Le,
    /// Strictly greater.
    Gt,
    /// At least.
    Ge,
}

/// A boolean condition: comparisons under the usual connectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// Constant truth value.
    Const(bool),
    /// `lhs op rhs`.
    Cmp(CmpOp, Expr, Expr),
    /// Negation.
    Not(Box<Cond>),
    /// N-ary conjunction (empty = true).
    And(Vec<Cond>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Cond>),
}

/// A statement of a command body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var := expr`.
    Assign(VarRef, Expr),
    /// `if cond then … else …` (either branch may be empty).
    If {
        /// The branch condition, evaluated on the current (possibly
        /// already partially updated) state.
        cond: Cond,
        /// Statements executed when `cond` holds.
        then_branch: Vec<Stmt>,
        /// Statements executed when `cond` does not hold.
        else_branch: Vec<Stmt>,
    },
}

/// A named guarded command `name :: guard → body`, in IR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrCommand {
    /// The command's name (used in diagnostics and error reports).
    pub name: String,
    /// The guard.
    pub guard: Cond,
    /// The effect, as a statement sequence.
    pub body: Vec<Stmt>,
}

impl Expr {
    /// A constant expression. (Named `int` to leave `Expr::Const` free
    /// for pattern matching.)
    pub fn int(value: usize) -> Expr {
        Expr::Const(value)
    }

    /// A variable read.
    pub fn var(var: VarRef) -> Expr {
        Expr::Var(var)
    }

    /// `table[self]`.
    pub fn table(self, values: Vec<usize>) -> Expr {
        Expr::Table {
            index: Box::new(self),
            values,
        }
    }

    /// `self + rhs`.
    // Deliberately named like the operator it builds syntax for; the
    // `std::ops` traits are not implemented because evaluation needs a
    // `State`, so `a + b` producing an unevaluated tree would mislead.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `max(self - rhs, 0)`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self mod modulus`.
    pub fn modulo(self, modulus: usize) -> Expr {
        Expr::Mod(Box::new(self), modulus)
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Cond {
        Cond::Cmp(CmpOp::Eq, self, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Cond {
        Cond::Cmp(CmpOp::Ne, self, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Cond {
        Cond::Cmp(CmpOp::Lt, self, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Cond {
        Cond::Cmp(CmpOp::Le, self, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Cond {
        Cond::Cmp(CmpOp::Gt, self, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Cond {
        Cond::Cmp(CmpOp::Ge, self, rhs)
    }

    /// Evaluates against a packed [`State`] view.
    pub fn eval(&self, s: &State<'_>) -> usize {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => s.get(*v),
            Expr::Table { index, values } => values[index.eval(s)],
            Expr::Add(a, b) => a.eval(s) + b.eval(s),
            Expr::Sub(a, b) => a.eval(s).saturating_sub(b.eval(s)),
            Expr::Mod(a, m) => a.eval(s) % m,
        }
    }

    /// Evaluates against a plain valuation indexed by variable index —
    /// the hook the `graybox-analyze` predicate transformers use to run
    /// IR on enumerated valuations without compiling a packed layout.
    pub fn eval_values(&self, values: &[usize]) -> usize {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => values[v.index()],
            Expr::Table { index, values: t } => t[index.eval_values(values)],
            Expr::Add(a, b) => a.eval_values(values) + b.eval_values(values),
            Expr::Sub(a, b) => a.eval_values(values).saturating_sub(b.eval_values(values)),
            Expr::Mod(a, m) => a.eval_values(values) % m,
        }
    }

    /// Calls `visit` for every variable this expression reads.
    pub fn visit_reads(&self, visit: &mut impl FnMut(VarRef)) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => visit(*v),
            Expr::Table { index, .. } => index.visit_reads(visit),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                a.visit_reads(visit);
                b.visit_reads(visit);
            }
            Expr::Mod(a, _) => a.visit_reads(visit),
        }
    }
}

impl CmpOp {
    /// Applies the comparison.
    pub fn holds(self, lhs: usize, rhs: usize) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The comparison holding exactly when this one does not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl Cond {
    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Cond {
        Cond::Not(Box::new(self))
    }

    /// `self && rhs` (flattening nested conjunctions).
    pub fn and(self, rhs: Cond) -> Cond {
        match (self, rhs) {
            (Cond::And(mut a), Cond::And(b)) => {
                a.extend(b);
                Cond::And(a)
            }
            (Cond::And(mut a), r) => {
                a.push(r);
                Cond::And(a)
            }
            (l, Cond::And(mut b)) => {
                b.insert(0, l);
                Cond::And(b)
            }
            (l, r) => Cond::And(vec![l, r]),
        }
    }

    /// `self || rhs` (flattening nested disjunctions).
    pub fn or(self, rhs: Cond) -> Cond {
        match (self, rhs) {
            (Cond::Or(mut a), Cond::Or(b)) => {
                a.extend(b);
                Cond::Or(a)
            }
            (Cond::Or(mut a), r) => {
                a.push(r);
                Cond::Or(a)
            }
            (l, Cond::Or(mut b)) => {
                b.insert(0, l);
                Cond::Or(b)
            }
            (l, r) => Cond::Or(vec![l, r]),
        }
    }

    /// Evaluates against a packed [`State`] view.
    pub fn eval(&self, s: &State<'_>) -> bool {
        match self {
            Cond::Const(b) => *b,
            Cond::Cmp(op, lhs, rhs) => op.holds(lhs.eval(s), rhs.eval(s)),
            Cond::Not(inner) => !inner.eval(s),
            Cond::And(parts) => parts.iter().all(|p| p.eval(s)),
            Cond::Or(parts) => parts.iter().any(|p| p.eval(s)),
        }
    }

    /// Evaluates against a plain valuation indexed by variable index
    /// (the [`Expr::eval_values`] twin for conditions).
    pub fn eval_values(&self, values: &[usize]) -> bool {
        match self {
            Cond::Const(b) => *b,
            Cond::Cmp(op, lhs, rhs) => op.holds(lhs.eval_values(values), rhs.eval_values(values)),
            Cond::Not(inner) => !inner.eval_values(values),
            Cond::And(parts) => parts.iter().all(|p| p.eval_values(values)),
            Cond::Or(parts) => parts.iter().any(|p| p.eval_values(values)),
        }
    }

    /// Calls `visit` for every variable this condition reads.
    pub fn visit_reads(&self, visit: &mut impl FnMut(VarRef)) {
        match self {
            Cond::Const(_) => {}
            Cond::Cmp(_, lhs, rhs) => {
                lhs.visit_reads(visit);
                rhs.visit_reads(visit);
            }
            Cond::Not(inner) => inner.visit_reads(visit),
            Cond::And(parts) | Cond::Or(parts) => {
                for part in parts {
                    part.visit_reads(visit);
                }
            }
        }
    }
}

impl Stmt {
    /// `var := expr`.
    pub fn assign(var: VarRef, expr: Expr) -> Stmt {
        Stmt::Assign(var, expr)
    }

    /// `if cond then … ` with an empty else branch.
    pub fn when(cond: Cond, then_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch: Vec::new(),
        }
    }

    /// `if cond then … else …`.
    pub fn if_else(cond: Cond, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        }
    }

    /// Executes against a packed [`State`] view.
    pub fn exec(&self, s: &mut State<'_>) {
        match self {
            Stmt::Assign(var, expr) => {
                let value = expr.eval(s);
                s.set(*var, value);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch = if cond.eval(s) {
                    then_branch
                } else {
                    else_branch
                };
                for stmt in branch {
                    stmt.exec(s);
                }
            }
        }
    }

    /// Executes against a plain valuation indexed by variable index.
    /// Later statements observe earlier writes, exactly as in
    /// [`Stmt::exec`]; domain membership of written values is *not*
    /// checked here (the compiler checks it, the analyzer's interval
    /// pass flags it).
    pub fn exec_values(&self, values: &mut [usize]) {
        match self {
            Stmt::Assign(var, expr) => values[var.index()] = expr.eval_values(values),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch = if cond.eval_values(values) {
                    then_branch
                } else {
                    else_branch
                };
                for stmt in branch {
                    stmt.exec_values(values);
                }
            }
        }
    }

    /// Calls `read` for every variable a contained expression or
    /// condition reads, and `write` for every assignment target (a
    /// *may*-footprint: conditional branches contribute regardless of
    /// their condition).
    pub fn visit_footprint(&self, read: &mut impl FnMut(VarRef), write: &mut impl FnMut(VarRef)) {
        match self {
            Stmt::Assign(var, expr) => {
                expr.visit_reads(read);
                write(*var);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.visit_reads(read);
                for stmt in then_branch.iter().chain(else_branch) {
                    stmt.visit_footprint(read, write);
                }
            }
        }
    }
}

impl IrCommand {
    /// Builds a named command `guard → body`.
    pub fn new(name: impl Into<String>, guard: Cond, body: Vec<Stmt>) -> IrCommand {
        IrCommand {
            name: name.into(),
            guard,
            body,
        }
    }

    /// Evaluates the guard at the current state.
    pub fn guard_holds(&self, s: &State<'_>) -> bool {
        self.guard.eval(s)
    }

    /// Executes the body on the current state.
    pub fn apply(&self, s: &mut State<'_>) {
        for stmt in &self.body {
            stmt.exec(s);
        }
    }

    /// Evaluates the guard over a plain valuation indexed by variable
    /// index.
    pub fn guard_holds_values(&self, values: &[usize]) -> bool {
        self.guard.eval_values(values)
    }

    /// Executes the body over a plain valuation indexed by variable
    /// index.
    pub fn apply_values(&self, values: &mut [usize]) {
        for stmt in &self.body {
            stmt.exec_values(values);
        }
    }

    /// The highest variable index mentioned anywhere in the command, or
    /// `None` when it mentions no variable (used by
    /// [`Program::command_ir`](super::Program::command_ir) to validate
    /// that every reference is declared).
    pub fn max_var_index(&self) -> Option<usize> {
        let max = std::cell::Cell::new(None::<usize>);
        let bump = |v: VarRef| {
            max.set(Some(max.get().map_or(v.index(), |m| m.max(v.index()))));
        };
        let mut on_read = |v| bump(v);
        let mut on_write = |v| bump(v);
        self.guard.visit_reads(&mut on_read);
        for stmt in &self.body {
            stmt.visit_footprint(&mut on_read, &mut on_write);
        }
        max.get()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Program;
    use super::*;

    #[test]
    fn expr_builders_and_eval() {
        let mut p = Program::new();
        let x = p.var("x", 5);
        let y = p.var("y", 5);
        p.command_ir(IrCommand::new(
            "mix",
            Expr::var(x)
                .lt(Expr::int(4))
                .and(Expr::var(y).ge(Expr::int(0))),
            vec![
                Stmt::assign(y, Expr::var(x).add(Expr::int(3)).modulo(5)),
                Stmt::assign(x, Expr::var(y).sub(Expr::int(10))), // truncated to 0
            ],
        ));
        let compiled = p.compile(|s| s.get(x) == 2 && s.get(y) == 0).unwrap();
        // From (x=2, y=0): y := (2+3)%5 = 0; x := max(0-10,0) = 0 → state (0,0).
        let from = 2;
        let to = 0;
        assert!(compiled.system().has_edge(from, to));
    }

    #[test]
    fn table_lookup_evaluates() {
        let mut p = Program::new();
        let x = p.var("x", 3);
        p.command_ir(IrCommand::new(
            "perm",
            Cond::Const(true),
            vec![Stmt::assign(x, Expr::var(x).table(vec![1, 2, 0]))],
        ));
        let compiled = p.compile(|_| true).unwrap();
        assert!(compiled.system().has_edge(0, 1));
        assert!(compiled.system().has_edge(1, 2));
        assert!(compiled.system().has_edge(2, 0));
    }

    #[test]
    fn if_branches_execute_sequentially() {
        let mut p = Program::new();
        let x = p.var("x", 4);
        let y = p.var("y", 4);
        p.command_ir(IrCommand::new(
            "chain",
            Cond::Const(true),
            vec![
                Stmt::assign(x, Expr::int(2)),
                // The condition sees the just-written x.
                Stmt::when(
                    Expr::var(x).eq(Expr::int(2)),
                    vec![Stmt::assign(y, Expr::int(3))],
                ),
            ],
        ));
        let compiled = p.compile(|s| s.get(x) == 0 && s.get(y) == 0).unwrap();
        // (0,0) → (2,3) = 2 + 4*3 = 14.
        assert!(compiled.system().has_edge(0, 14));
    }

    #[test]
    fn cmp_ops_hold_and_negate() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(0usize, 1usize), (1, 1), (2, 1)] {
                assert_ne!(op.holds(a, b), op.negate().holds(a, b));
            }
        }
    }

    #[test]
    fn footprint_visits_reads_and_writes() {
        let mut p = Program::new();
        let x = p.var("x", 3);
        let y = p.var("y", 3);
        let z = p.var("z", 3);
        let cmd = IrCommand::new(
            "c",
            Expr::var(x).eq(Expr::int(1)),
            vec![Stmt::when(
                Expr::var(y).ne(Expr::int(0)),
                vec![Stmt::assign(z, Expr::var(y))],
            )],
        );
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        cmd.guard.visit_reads(&mut |v| reads.push(v.index()));
        for stmt in &cmd.body {
            stmt.visit_footprint(&mut |v| reads.push(v.index()), &mut |v| {
                writes.push(v.index());
            });
        }
        reads.sort_unstable();
        reads.dedup();
        assert_eq!(reads, vec![x.index(), y.index()]);
        assert_eq!(writes, vec![z.index()]);
        assert_eq!(cmd.max_var_index(), Some(z.index()));
    }

    #[test]
    fn out_of_domain_ir_assignment_is_reported() {
        use super::super::GclError;
        let mut p = Program::new();
        let x = p.var("x", 2);
        p.command_ir(IrCommand::new(
            "overflow",
            Cond::Const(true),
            vec![Stmt::assign(x, Expr::int(7))],
        ));
        assert_eq!(
            p.compile(|_| true).unwrap_err(),
            GclError::OutOfDomain {
                command: "overflow".into()
            }
        );
    }

    #[test]
    fn valuation_hooks_match_compiled_semantics() {
        // Execute the same command through `exec_values` and through the
        // packed compiler; the successor states must agree.
        let mut p = Program::new();
        let x = p.var("x", 5);
        let y = p.var("y", 5);
        let cmd = IrCommand::new(
            "mix",
            Expr::var(x).lt(Expr::int(4)),
            vec![
                Stmt::assign(y, Expr::var(x).add(Expr::int(3)).modulo(5)),
                Stmt::when(
                    Expr::var(y).eq(Expr::int(0)),
                    vec![Stmt::assign(x, Expr::var(y).table(vec![2, 0, 1, 3, 4]))],
                ),
            ],
        );
        p.command_ir(cmd.clone());
        let compiled = p.compile(|_| true).unwrap();
        for x0 in 0..5usize {
            for y0 in 0..5usize {
                let mut vals = vec![x0, y0];
                let enabled = cmd.guard_holds_values(&vals);
                assert_eq!(enabled, x0 < 4);
                if enabled {
                    cmd.apply_values(&mut vals);
                }
                let from = x0 + 5 * y0;
                let to = vals[0] + 5 * vals[1];
                assert!(compiled.system().has_edge(from, to), "({x0},{y0})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "undeclared variable")]
    fn undeclared_variable_in_ir_panics_at_insertion() {
        let mut p = Program::new();
        let _ = p.var("x", 2);
        let ghost = VarRef::new(7);
        p.command_ir(IrCommand::new(
            "bad",
            Cond::Const(true),
            vec![Stmt::assign(ghost, Expr::int(0))],
        ));
    }
}
