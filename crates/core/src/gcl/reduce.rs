//! The shared reduced reachable explorer: level-synchronized BFS with an
//! optional symmetry quotient ([`sym`](super::sym)) and optional static
//! ample-set partial-order reduction ([`por`](super::por)), composed in
//! that order (canonicalize first, then prune interleavings) and sharded
//! exactly like [`Program::compile_reachable_on`] — bit-identical output
//! at every worker count.
//!
//! The POR cycle proviso is enforced dynamically and level-monotonically:
//! a singleton ample edge is accepted only when its (canonical) target
//! was **not** discovered before the current BFS level started. Every
//! accepted ample edge therefore strictly increases the BFS level, so no
//! cycle of the reduced graph consists of ample edges only — the
//! "ignoring" pathology cannot arise. Workers check the same rule
//! against the frozen level-start interning map, which is why the
//! parallel exploration reproduces the serial one exactly (the frozen
//! map holds precisely the ids below the level-start watermark).

use std::collections::HashMap;

use crate::sweep::{chunk_ranges, join_all};
use crate::FiniteSystem;

use super::por::PorSpec;
use super::sym::SymmetrySpec;
use super::{
    default_workers, narrow, GclError, Layout, Program, ReachableProgram, State, CHUNK_ALIGN,
    REACH_LEVEL_MIN,
};

/// The outcome of a frontier-only quotient BFS
/// ([`Program::sym_reach_words`]).
#[derive(Debug, Clone)]
pub struct SymReach {
    /// Discovered canonical words, in BFS (FIFO interning) order.
    pub words: Vec<u64>,
    /// First word satisfying the target predicate, with its BFS level
    /// (`0` = a seed), or `None` when the search drained (or was
    /// capped) without a hit.
    pub hit: Option<(u64, usize)>,
}

/// What a reduced BFS hands back: canonical words in intern order, the
/// quotient edge list (empty unless requested), the seed count, and the
/// first target hit with its BFS level.
type ReducedBfs = (Vec<u64>, Vec<(usize, usize)>, usize, Option<(u64, usize)>);

/// Where the exploration's seeds come from.
enum Seeds<'a, F> {
    /// Scan the full domain product for states satisfying the
    /// predicate (feasible only when the product is sweepable).
    Predicate(&'a F),
    /// Explicit packed words (for spaces too large to scan).
    Words(&'a [u64]),
}

// Manual impls: both variants hold references only, so the enum is Copy
// regardless of `F` (a derive would demand `F: Copy`).
impl<F> Clone for Seeds<'_, F> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<F> Copy for Seeds<'_, F> {}

impl Program {
    /// [`compile_reachable`](Program::compile_reachable) on the symmetry
    /// quotient: BFS over canonical representatives only. Requires the
    /// contract of [`fair_self_check_sym`](Program::fair_self_check_sym)
    /// (valid symmetry, orbit-closed `init`); then the result is the
    /// canonical image of the full reachable fragment.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile_reachable_sym(
        &self,
        sym: &SymmetrySpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<ReachableProgram, GclError> {
        let layout = self.layout()?;
        let workers = default_workers(narrow(layout.total));
        self.reduced_reachable_with(layout, workers, Some(sym), None, &init)
    }

    /// [`compile_reachable_sym`](Program::compile_reachable_sym) with an
    /// explicit worker count; output is identical at every count.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile_reachable_sym_on(
        &self,
        workers: usize,
        sym: &SymmetrySpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<ReachableProgram, GclError> {
        let layout = self.layout()?;
        self.reduced_reachable_with(layout, workers, Some(sym), None, &init)
    }

    /// [`compile_reachable`](Program::compile_reachable) under static
    /// ample-set partial-order reduction: at states where a safe command
    /// is enabled and the cycle proviso holds, only that command's edge
    /// is explored. Deadlocks (quiescent states) and reachability of
    /// predicates over the [`PorSpec`]'s visible variables are preserved.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile_reachable_reduced(
        &self,
        por: &PorSpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<ReachableProgram, GclError> {
        let layout = self.layout()?;
        let workers = default_workers(narrow(layout.total));
        self.reduced_reachable_with(layout, workers, None, Some(por), &init)
    }

    /// [`compile_reachable_reduced`](Program::compile_reachable_reduced)
    /// with an explicit worker count; output is identical at every count.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile_reachable_reduced_on(
        &self,
        workers: usize,
        por: &PorSpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<ReachableProgram, GclError> {
        let layout = self.layout()?;
        self.reduced_reachable_with(layout, workers, None, Some(por), &init)
    }

    /// Both reductions composed: canonicalize every target, then prune
    /// interleavings. Sound when, additionally, the safe commands and
    /// the visible set are themselves symmetric (the group maps safe
    /// commands to safe commands) — the TME generator and the
    /// differential suite construct exactly such programs.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile_reachable_sym_reduced(
        &self,
        sym: &SymmetrySpec,
        por: &PorSpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<ReachableProgram, GclError> {
        let layout = self.layout()?;
        let workers = default_workers(narrow(layout.total));
        self.reduced_reachable_with(layout, workers, Some(sym), Some(por), &init)
    }

    /// [`compile_reachable_sym_reduced`](Program::compile_reachable_sym_reduced)
    /// with an explicit worker count; output is identical at every count.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn compile_reachable_sym_reduced_on(
        &self,
        workers: usize,
        sym: &SymmetrySpec,
        por: &PorSpec,
        init: impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync,
    ) -> Result<ReachableProgram, GclError> {
        let layout = self.layout()?;
        self.reduced_reachable_with(layout, workers, Some(sym), Some(por), &init)
    }

    fn reduced_reachable_with(
        &self,
        layout: Layout,
        workers: usize,
        sym: Option<&SymmetrySpec>,
        por: Option<&PorSpec>,
        init: &(impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync),
    ) -> Result<ReachableProgram, GclError> {
        let (words, edges, num_init, _) = self.reduced_bfs(
            &layout,
            workers,
            sym,
            por,
            Seeds::Predicate(init),
            usize::MAX,
            None::<&fn(u64) -> bool>,
            true,
        )?;
        let system = FiniteSystem::builder(words.len())
            .initials(0..num_init)
            .edges(edges)
            .build()?;
        Ok(ReachableProgram {
            system,
            words,
            var_info: self.vars.clone(),
            layout,
        })
    }

    /// Frontier-only BFS over the symmetry quotient from explicit seed
    /// words — the entry point for spaces **far too large to scan** (the
    /// n = 4 TME product): no edges are recorded, only the discovered
    /// canonical words, and the search stops early at the first word
    /// satisfying `target` (tested in deterministic interning order).
    /// Discovery beyond `cap` interned words reports
    /// [`GclError::TooManyStates`] (checked at level boundaries).
    ///
    /// Seeds are canonicalized before interning, so callers may pass raw
    /// words.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    ///
    /// # Panics
    ///
    /// Panics if a seed word lies outside the domain product.
    pub fn sym_reach_words(
        &self,
        sym: &SymmetrySpec,
        seeds: &[u64],
        cap: usize,
        target: Option<&(impl Fn(u64) -> bool + Sync)>,
    ) -> Result<SymReach, GclError> {
        let layout = self.layout()?;
        let workers = default_workers(narrow(layout.total));
        self.sym_reach_words_with(&layout, workers, sym, seeds, cap, target)
    }

    /// [`sym_reach_words`](Program::sym_reach_words) with an explicit
    /// worker count; output is identical at every count.
    ///
    /// # Errors
    ///
    /// See [`GclError`].
    pub fn sym_reach_words_on(
        &self,
        workers: usize,
        sym: &SymmetrySpec,
        seeds: &[u64],
        cap: usize,
        target: Option<&(impl Fn(u64) -> bool + Sync)>,
    ) -> Result<SymReach, GclError> {
        let layout = self.layout()?;
        self.sym_reach_words_with(&layout, workers, sym, seeds, cap, target)
    }

    fn sym_reach_words_with(
        &self,
        layout: &Layout,
        workers: usize,
        sym: &SymmetrySpec,
        seeds: &[u64],
        cap: usize,
        target: Option<&(impl Fn(u64) -> bool + Sync)>,
    ) -> Result<SymReach, GclError> {
        let (words, _, _, hit) = self.reduced_bfs(
            layout,
            workers,
            Some(sym),
            None,
            Seeds::<for<'a, 'b> fn(&'a State<'b>) -> bool>::Words(seeds),
            cap,
            target,
            false,
        )?;
        Ok(SymReach { words, hit })
    }

    /// The core reduced BFS. Returns `(words, edges, num_init, hit)`.
    #[allow(clippy::too_many_arguments)]
    fn reduced_bfs(
        &self,
        layout: &Layout,
        workers: usize,
        sym: Option<&SymmetrySpec>,
        por: Option<&PorSpec>,
        seeds: Seeds<'_, impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync>,
        cap: usize,
        target: Option<&(impl Fn(u64) -> bool + Sync)>,
        record_edges: bool,
    ) -> Result<ReducedBfs, GclError> {
        let total = narrow(layout.total);
        let workers = workers.max(1);
        if let Some(sym) = sym {
            assert_eq!(
                sym.num_vars(),
                self.vars.len(),
                "spec/program arity mismatch"
            );
            assert_eq!(
                sym.num_commands(),
                self.commands.len(),
                "spec/program arity mismatch"
            );
        }
        if let Some(por) = por {
            assert_eq!(
                por.num_commands(),
                self.commands.len(),
                "POR/program arity mismatch"
            );
        }

        // Seed words, canonicalized, in deterministic order.
        let mut probe = State::new(layout);
        let raw_seeds: Vec<u64> = match seeds {
            Seeds::Words(words) => {
                let mut out = Vec::with_capacity(words.len());
                for &word in words {
                    assert!(word < layout.total, "seed outside the domain product");
                    out.push(match sym {
                        Some(sym) => {
                            probe.load(word);
                            sym.canon(layout, &probe.values, word).0
                        }
                        None => word,
                    });
                }
                out
            }
            Seeds::Predicate(init) => {
                let init_tasks: Vec<_> = chunk_ranges(total, workers, CHUNK_ALIGN)
                    .into_iter()
                    .map(|range| {
                        move || {
                            let mut found: Vec<u64> = Vec::new();
                            let mut view = State::new(layout);
                            view.load(range.start as u64);
                            for _ in range {
                                if init(&view) {
                                    found.push(match sym {
                                        Some(sym) => sym.canon(layout, &view.values, view.word).0,
                                        None => view.word,
                                    });
                                }
                                view.advance();
                            }
                            found
                        }
                    })
                    .collect();
                join_all(init_tasks).into_iter().flatten().collect()
            }
        };

        let mut words: Vec<u64> = Vec::new();
        let mut ids: HashMap<u64, usize> = HashMap::new();
        let mut hit: Option<(u64, usize)> = None;
        for &word in &raw_seeds {
            if let std::collections::hash_map::Entry::Vacant(slot) = ids.entry(word) {
                slot.insert(words.len());
                words.push(word);
                if hit.is_none() {
                    if let Some(target) = target {
                        if target(word) {
                            hit = Some((word, 0));
                        }
                    }
                }
            }
        }
        if words.is_empty() {
            return Err(GclError::NoInitialState);
        }
        let num_init = words.len();
        if hit.is_some() {
            return Ok((words, Vec::new(), num_init, hit));
        }

        // Level-synchronized BFS, mirroring `compile_reachable_with`:
        // the POR proviso reads the interning map through the
        // level-start watermark, so frozen-map workers and the live
        // serial loop accept exactly the same ample edges.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut row: Vec<u64> = Vec::with_capacity(self.commands.len().max(1));
        let mut view = State::new(layout);
        let mut level_start = 0usize;
        let mut level = 0usize;
        'bfs: while level_start < words.len() {
            let level_end = words.len();
            level += 1;
            if workers <= 1 || level_end - level_start < REACH_LEVEL_MIN {
                for cursor in level_start..level_end {
                    view.load(words[cursor]);
                    self.reduced_row(
                        layout, sym, por, &ids, level_end, &mut view, &mut probe, &mut row,
                    )
                    .map_err(|c| self.out_of_domain(c))?;
                    if let Some(found) = intern_words(
                        &mut ids,
                        &mut words,
                        record_edges.then_some(&mut edges),
                        cursor,
                        &row,
                        target,
                    ) {
                        hit = Some((found, level));
                        break 'bfs;
                    }
                }
            } else {
                let level_words = &words[level_start..level_end];
                let frozen = &ids;
                let tasks: Vec<_> = chunk_ranges(level_words.len(), workers, 1)
                    .into_iter()
                    .map(|chunk| {
                        let slice = &level_words[chunk];
                        move || {
                            let mut counts: Vec<usize> = Vec::with_capacity(slice.len());
                            let mut targets: Vec<u64> = Vec::new();
                            let mut row: Vec<u64> = Vec::with_capacity(self.commands.len().max(1));
                            let mut view = State::new(layout);
                            let mut probe = State::new(layout);
                            for &word in slice {
                                view.load(word);
                                self.reduced_row(
                                    layout, sym, por, frozen, level_end, &mut view, &mut probe,
                                    &mut row,
                                )
                                .map_err(|c| self.out_of_domain(c))?;
                                counts.push(row.len());
                                targets.extend_from_slice(&row);
                            }
                            Ok::<_, GclError>((counts, targets))
                        }
                    })
                    .collect();
                let results = join_all(tasks);
                let mut cursor = level_start;
                for result in results {
                    let (counts, targets) = result?;
                    let mut at = 0usize;
                    for count in counts {
                        if hit.is_none() {
                            if let Some(found) = intern_words(
                                &mut ids,
                                &mut words,
                                record_edges.then_some(&mut edges),
                                cursor,
                                &targets[at..at + count],
                                target,
                            ) {
                                hit = Some((found, level));
                            }
                        }
                        at += count;
                        cursor += 1;
                    }
                }
                debug_assert_eq!(cursor, level_end);
                if hit.is_some() {
                    break 'bfs;
                }
            }
            if words.len() > cap {
                return Err(GclError::TooManyStates {
                    actual: words.len(),
                    max: cap,
                });
            }
            level_start = level_end;
        }
        Ok((words, edges, num_init, hit))
    }

    /// One reduced successor row (canonical words, sorted, deduplicated,
    /// with the quiescence stutter): under POR, the first enabled safe
    /// command whose canonical target passes the level proviso — the
    /// target had no id below `level_end`, the watermark frozen when the
    /// current level started — contributes the whole row.
    #[allow(clippy::too_many_arguments)]
    fn reduced_row(
        &self,
        layout: &Layout,
        sym: Option<&SymmetrySpec>,
        por: Option<&PorSpec>,
        ids: &HashMap<u64, usize>,
        level_end: usize,
        view: &mut State<'_>,
        probe: &mut State<'_>,
        row: &mut Vec<u64>,
    ) -> Result<(), usize> {
        row.clear();
        if let Some(por) = por {
            for (index, command) in self.commands.iter().enumerate() {
                if !por.safe(index) || !command.enabled(view) {
                    continue;
                }
                view.begin_effect();
                command.apply(view);
                let target = view.finish_effect().map_err(|()| index)?;
                let canon = match sym {
                    Some(sym) => {
                        probe.load(target);
                        sym.canon(layout, &probe.values, target).0
                    }
                    None => target,
                };
                if ids.get(&canon).is_none_or(|&id| id >= level_end) {
                    row.push(canon);
                    return Ok(());
                }
            }
        }
        for (index, command) in self.commands.iter().enumerate() {
            if !command.enabled(view) {
                continue;
            }
            view.begin_effect();
            command.apply(view);
            let target = view.finish_effect().map_err(|()| index)?;
            row.push(match sym {
                Some(sym) => {
                    probe.load(target);
                    sym.canon(layout, &probe.values, target).0
                }
                None => target,
            });
        }
        if row.is_empty() {
            row.push(view.word);
        }
        row.sort_unstable();
        row.dedup();
        Ok(())
    }
}

/// Interns one reduced row: new canonical words get the next dense id in
/// row order (the serial FIFO discovery order); returns the first target
/// hit, if any.
fn intern_words(
    ids: &mut HashMap<u64, usize>,
    words: &mut Vec<u64>,
    mut edges: Option<&mut Vec<(usize, usize)>>,
    cursor: usize,
    row: &[u64],
    target: Option<&(impl Fn(u64) -> bool + Sync)>,
) -> Option<u64> {
    let mut hit = None;
    for &word in row {
        let next = *ids.entry(word).or_insert_with(|| {
            words.push(word);
            if hit.is_none() {
                if let Some(target) = target {
                    if target(word) {
                        hit = Some(word);
                    }
                }
            }
            words.len() - 1
        });
        if let Some(edges) = edges.as_deref_mut() {
            edges.push((cursor, next));
        }
        if hit.is_some() {
            break;
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::super::ir::{Expr, IrCommand, Stmt};
    use super::super::por::{Independence, PorSpec};
    use super::super::sym::{SymmetryElement, SymmetrySpec};
    use super::*;

    /// Two independent mod-4 counters (IR) with swap symmetry.
    fn counters() -> (Program, SymmetrySpec) {
        let mut p = Program::new();
        let x = p.var("x", 4);
        let y = p.var("y", 4);
        p.command_ir(IrCommand::new(
            "bump_x",
            Expr::var(x).lt(Expr::int(3)),
            vec![Stmt::assign(x, Expr::var(x).add(Expr::int(1)))],
        ));
        p.command_ir(IrCommand::new(
            "bump_y",
            Expr::var(y).lt(Expr::int(3)),
            vec![Stmt::assign(y, Expr::var(y).add(Expr::int(1)))],
        ));
        let swap = SymmetryElement {
            var_perm: vec![1, 0],
            value_maps: vec![None, None],
            cmd_perm: vec![1, 0],
        };
        let spec = SymmetrySpec::new(&[SymmetryElement::identity(2, 2), swap]).unwrap();
        (p, spec)
    }

    fn init(s: &State<'_>) -> bool {
        s.get(super::super::VarRef::new(0)) == 0 && s.get(super::super::VarRef::new(1)) == 0
    }

    #[test]
    fn sym_reachable_is_the_canonical_image_of_the_full_fragment() {
        let (p, spec) = counters();
        spec.validate(&p).unwrap();
        let full = p.compile_reachable(init).unwrap();
        let reduced = p.compile_reachable_sym(&spec, init).unwrap();
        let mut canon_full: Vec<u64> = (0..full.system().num_states())
            .map(|id| p.canonicalize(&spec, narrow(full.word(id))).unwrap() as u64)
            .collect();
        canon_full.sort_unstable();
        canon_full.dedup();
        let mut canon_reduced: Vec<u64> = (0..reduced.system().num_states())
            .map(|id| reduced.word(id))
            .collect();
        canon_reduced.sort_unstable();
        assert_eq!(canon_full, canon_reduced);
        assert_eq!(reduced.system().num_states(), 10);
        assert_eq!(full.system().num_states(), 16);
    }

    #[test]
    fn por_explores_a_subset_reaching_every_deadlock() {
        let (p, _) = counters();
        let indep = Independence::from_program(&p);
        let por = PorSpec::new(&p, &indep, &[]);
        assert_eq!(por.num_safe(), 2);
        let full = p.compile_reachable(init).unwrap();
        let reduced = p.compile_reachable_reduced(&por, init).unwrap();
        assert!(reduced.system().num_states() <= full.system().num_states());
        // The single quiescent state (3, 3) must survive the reduction.
        let quiescent = |words: Vec<u64>| -> Vec<u64> {
            words
                .into_iter()
                .filter(|&w| p.step(narrow(w)).unwrap() == vec![narrow(w)])
                .collect()
        };
        let full_words: Vec<u64> = (0..full.system().num_states())
            .map(|id| full.word(id))
            .collect();
        let red_words: Vec<u64> = (0..reduced.system().num_states())
            .map(|id| reduced.word(id))
            .collect();
        let mut dq_full = quiescent(full_words);
        let mut dq_red = quiescent(red_words);
        dq_full.sort_unstable();
        dq_red.sort_unstable();
        assert_eq!(dq_full, vec![15]);
        assert_eq!(dq_full, dq_red);
        // The reduced fragment is genuinely smaller here: one chain
        // instead of the full 4x4 grid.
        assert!(reduced.system().num_states() < full.system().num_states());
    }

    #[test]
    fn sym_reach_words_finds_targets_at_their_bfs_level() {
        let (p, spec) = counters();
        let reach = p
            .sym_reach_words(&spec, &[0], usize::MAX, Some(&|w: u64| w == 15))
            .unwrap();
        // (3, 3) is six bumps away from (0, 0).
        assert_eq!(reach.hit, Some((15, 6)));
        let drained = p
            .sym_reach_words(&spec, &[0], usize::MAX, None::<&fn(u64) -> bool>)
            .unwrap();
        assert_eq!(drained.hit, None);
        assert_eq!(drained.words.len(), 10);
        let capped = p.sym_reach_words(&spec, &[0], 3, None::<&fn(u64) -> bool>);
        assert!(matches!(capped, Err(GclError::TooManyStates { .. })));
    }

    #[test]
    fn reduced_explorations_are_worker_invariant() {
        let (p, spec) = counters();
        let indep = Independence::from_program(&p);
        let por = PorSpec::new(&p, &indep, &[]);
        let serial = p
            .compile_reachable_sym_reduced_on(1, &spec, &por, init)
            .unwrap();
        for workers in [2, 4] {
            let par = p
                .compile_reachable_sym_reduced_on(workers, &spec, &por, init)
                .unwrap();
            let serial_words: Vec<u64> = (0..serial.system().num_states())
                .map(|id| serial.word(id))
                .collect();
            let par_words: Vec<u64> = (0..par.system().num_states())
                .map(|id| par.word(id))
                .collect();
            assert_eq!(serial_words, par_words);
        }
    }
}
