//! Static ample-set partial-order reduction for reachable exploration.
//!
//! The reduction is driven entirely by the expression IR's footprints —
//! zero state enumeration. Two commands are *independent* when their
//! footprints are disjoint (neither writes a variable the other reads
//! *or* writes, guard reads included); disjoint footprints give strong
//! independence: the commands commute **and** cannot enable or disable
//! each other. A command is a *safe singleton ample* candidate when it
//! has IR, writes no visible variable, and is independent of every other
//! command — then at any state where it is enabled, exploring only its
//! edge preserves deadlocks and reachability of predicates over the
//! visible variables, provided the exploration-time cycle proviso holds
//! (the explorer in [`reduce`](super::reduce) accepts an ample edge only
//! when it strictly advances the BFS level). DESIGN.md §13 spells out
//! the provisos; `tests/reduction_differential.rs` compares reduced and
//! full explorations on hundreds of seeded programs.

use super::ir::IrCommand;
use super::{Behavior, Program, VarRef};

/// The symmetric command-independence relation inferred from IR
/// footprints. Closure commands (no IR) conservatively conflict with
/// everything, including themselves.
#[derive(Debug, Clone)]
pub struct Independence {
    num_commands: usize,
    /// Row-major bit matrix: bit `a * num_commands + b` set ⇔ `a` and
    /// `b` are independent. The diagonal is always dependent.
    bits: Vec<u64>,
}

/// `(reads ∪ writes, writes)` of one command as variable-index bitsets,
/// or `None` for closure commands.
fn footprint(command: &IrCommand, var_words: usize) -> (Vec<u64>, Vec<u64>) {
    let mut touches = vec![0u64; var_words];
    let mut writes = vec![0u64; var_words];
    let mut mark_touch = |v: VarRef| touches[v.index() / 64] |= 1u64 << (v.index() % 64);
    command.guard.visit_reads(&mut mark_touch);
    let mut reads = vec![0u64; var_words];
    let mut mark_read = |v: VarRef| reads[v.index() / 64] |= 1u64 << (v.index() % 64);
    let mut mark_write = |v: VarRef| writes[v.index() / 64] |= 1u64 << (v.index() % 64);
    for stmt in &command.body {
        stmt.visit_footprint(&mut mark_read, &mut mark_write);
    }
    for ((t, &r), &w) in touches.iter_mut().zip(&reads).zip(&writes) {
        *t |= r | w;
    }
    (touches, writes)
}

fn disjoint(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| x & y == 0)
}

impl Independence {
    /// Infers the relation from a program's IR commands.
    pub fn from_program(program: &Program) -> Self {
        let ncmd = program.commands.len();
        let var_words = program.vars.len().div_ceil(64).max(1);
        let prints: Vec<Option<(Vec<u64>, Vec<u64>)>> = program
            .commands
            .iter()
            .map(|command| match &command.behavior {
                Behavior::Closure { .. } => None,
                Behavior::Ir(cmd) => Some(footprint(cmd, var_words)),
            })
            .collect();
        let mut indep = Independence {
            num_commands: ncmd,
            bits: vec![0u64; (ncmd * ncmd).div_ceil(64).max(1)],
        };
        for a in 0..ncmd {
            let Some((touches_a, writes_a)) = &prints[a] else {
                continue;
            };
            for (b, print_b) in prints.iter().enumerate().skip(a + 1) {
                let Some((touches_b, writes_b)) = print_b else {
                    continue;
                };
                if disjoint(writes_a, touches_b) && disjoint(writes_b, touches_a) {
                    indep.set(a, b);
                    indep.set(b, a);
                }
            }
        }
        indep
    }

    /// Builds the relation from an explicit list of unordered
    /// independent pairs — the entry point for analyses that establish
    /// independence by means beyond footprint disjointness (e.g. the
    /// interval-refined relation in `graybox-analyze`, which also
    /// admits pairs whose guards are jointly unsatisfiable and which
    /// provably cannot enable each other). The diagonal stays
    /// dependent; each pair is symmetrized.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index or a diagonal pair.
    pub fn from_pairs(num_commands: usize, pairs: &[(usize, usize)]) -> Self {
        let mut indep = Independence {
            num_commands,
            bits: vec![0u64; (num_commands * num_commands).div_ceil(64).max(1)],
        };
        for &(a, b) in pairs {
            assert!(a < num_commands && b < num_commands, "pair out of range");
            assert_ne!(a, b, "the diagonal is dependent by convention");
            indep.set(a, b);
            indep.set(b, a);
        }
        indep
    }

    fn set(&mut self, a: usize, b: usize) {
        let at = a * self.num_commands + b;
        self.bits[at / 64] |= 1u64 << (at % 64);
    }

    /// Number of commands the relation covers.
    pub fn num_commands(&self) -> usize {
        self.num_commands
    }

    /// Are commands `a` and `b` independent (disjoint footprints)?
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn independent(&self, a: usize, b: usize) -> bool {
        assert!(a < self.num_commands && b < self.num_commands);
        let at = a * self.num_commands + b;
        self.bits[at / 64] & (1u64 << (at % 64)) != 0
    }

    /// Number of unordered independent pairs.
    pub fn num_independent_pairs(&self) -> usize {
        self.bits
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
            / 2
    }

    /// Number of unordered distinct pairs overall.
    pub fn num_pairs(&self) -> usize {
        self.num_commands * self.num_commands.saturating_sub(1) / 2
    }
}

/// The static side of an ample-set reduction: which commands may serve
/// as singleton ample sets.
#[derive(Debug, Clone)]
pub struct PorSpec {
    safe: Vec<bool>,
}

impl PorSpec {
    /// Marks each command safe when it (a) has IR, (b) writes no
    /// variable in `visible`, and (c) is independent of every other
    /// command. `visible` lists the variables the checked properties may
    /// mention — reachability of predicates over them survives the
    /// reduction.
    pub fn new(program: &Program, independence: &Independence, visible: &[VarRef]) -> Self {
        let ncmd = program.commands.len();
        assert_eq!(
            independence.num_commands(),
            ncmd,
            "relation/program mismatch"
        );
        let var_words = program.vars.len().div_ceil(64).max(1);
        let mut visible_set = vec![0u64; var_words];
        for v in visible {
            visible_set[v.index() / 64] |= 1u64 << (v.index() % 64);
        }
        let safe = (0..ncmd)
            .map(|c| {
                let Behavior::Ir(cmd) = &program.commands[c].behavior else {
                    return false;
                };
                let (_, writes) = footprint(cmd, var_words);
                disjoint(&writes, &visible_set)
                    && (0..ncmd).all(|d| d == c || independence.independent(c, d))
            })
            .collect();
        PorSpec { safe }
    }

    /// May command `c` serve as a singleton ample set?
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn safe(&self, c: usize) -> bool {
        self.safe[c]
    }

    /// Number of safe commands.
    pub fn num_safe(&self) -> usize {
        self.safe.iter().filter(|&&s| s).count()
    }

    /// Number of commands covered.
    pub fn num_commands(&self) -> usize {
        self.safe.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::ir::{Expr, IrCommand, Stmt};
    use super::*;

    /// Two disjoint counters plus one command coupling them.
    fn program() -> Program {
        let mut p = Program::new();
        let x = p.var("x", 4);
        let y = p.var("y", 4);
        p.command_ir(IrCommand::new(
            "bump_x",
            Expr::var(x).lt(Expr::int(3)),
            vec![Stmt::assign(x, Expr::var(x).add(Expr::int(1)))],
        ));
        p.command_ir(IrCommand::new(
            "bump_y",
            Expr::var(y).lt(Expr::int(3)),
            vec![Stmt::assign(y, Expr::var(y).add(Expr::int(1)))],
        ));
        p.command_ir(IrCommand::new(
            "couple",
            Expr::var(x).eq(Expr::int(3)),
            vec![Stmt::assign(y, Expr::int(0))],
        ));
        p
    }

    #[test]
    fn disjoint_footprints_are_independent() {
        let p = program();
        let indep = Independence::from_program(&p);
        assert!(indep.independent(0, 1));
        assert!(!indep.independent(0, 2)); // couple reads x
        assert!(!indep.independent(1, 2)); // couple writes y
        assert!(!indep.independent(0, 0)); // diagonal is dependent
        assert_eq!(indep.num_independent_pairs(), 1);
        assert_eq!(indep.num_pairs(), 3);
    }

    #[test]
    fn closure_commands_conflict_with_everything() {
        let mut p = program();
        let x = super::super::VarRef::new(0);
        p.command("opaque", move |s| s.get(x) == 0, move |s| s.set(x, 1));
        let indep = Independence::from_program(&p);
        for other in 0..3 {
            assert!(!indep.independent(3, other));
        }
    }

    #[test]
    fn safe_commands_are_invisible_and_fully_independent() {
        let p = program();
        let indep = Independence::from_program(&p);
        let x = super::super::VarRef::new(0);
        // No command is independent of all others here.
        let por = PorSpec::new(&p, &indep, &[]);
        assert_eq!(por.num_safe(), 0);

        // Drop the coupling command: both counters become safe — until
        // their variable is visible.
        let mut q = Program::new();
        let qx = q.var("x", 4);
        let qy = q.var("y", 4);
        q.command_ir(IrCommand::new(
            "bump_x",
            Expr::var(qx).lt(Expr::int(3)),
            vec![Stmt::assign(qx, Expr::var(qx).add(Expr::int(1)))],
        ));
        q.command_ir(IrCommand::new(
            "bump_y",
            Expr::var(qy).lt(Expr::int(3)),
            vec![Stmt::assign(qy, Expr::var(qy).add(Expr::int(1)))],
        ));
        let qindep = Independence::from_program(&q);
        let all_safe = PorSpec::new(&q, &qindep, &[]);
        assert_eq!(all_safe.num_safe(), 2);
        let x_visible = PorSpec::new(&q, &qindep, &[x]);
        assert!(!x_visible.safe(0));
        assert!(x_visible.safe(1));
    }
}
