//! Automatic synthesis of graybox stabilization wrappers.
//!
//! The paper's last sentence: *"Another direction we are pursuing is
//! automatic synthesis of graybox dependability."* This module implements
//! the base case for finite specifications: given a spec `A`, synthesize a
//! wrapper `W` — from `A` alone, never from an implementation — such that
//! the weakly fair composition `A ⊓ W` is stabilizing to (the stuttering
//! closure of) `A`. By the fair Theorem 1, the same `W` then stabilizes
//! every everywhere-implementation of `A`.
//!
//! The synthesized wrapper is the **reset wrapper**: from every
//! illegitimate state, jump to a recovery target; at legitimate states,
//! skip. Its correctness is a small theorem checked in the tests (and on
//! random instances in experiment T8):
//!
//! *Proof sketch.* Legitimate states are closed under `A` (they are
//! `A`'s init-reachable set), so no SCC of `A ∪ W` mixes legitimate and
//! illegitimate states — `W`'s cross edges always exit the illegitimate
//! region and never return. An SCC inside the illegitimate region contains
//! no `W` edge (they all leave), so no *fair* computation stays there. An
//! SCC inside the legitimate region consists of `A`-edges and `W`-skips,
//! all of which are edges of the stuttering closure of `A`. Hence no fair
//! computation diverges. ∎
//!
//! Stuttering closure matters: the fair execution model lets a disabled
//! wrapper skip, so the convergence *target* must admit self-loops at
//! legitimate states (compare [`crate::dijkstra`], which makes the same
//! move for the token ring).

use crate::{FiniteSystem, SystemError};

/// Adds a self-loop at every init-reachable ("legitimate") state of `a`.
///
/// The closure is behaviour-preserving for specification purposes: a
/// stutter step changes no observable state.
pub fn stutter_closure(a: &FiniteSystem) -> FiniteSystem {
    let legitimate = a.reachable_from_init();
    FiniteSystem::builder(a.num_states())
        .initials(a.init().iter())
        .edges(a.edges())
        .edges(legitimate.iter().map(|s| (s, s)))
        .build()
        .expect("adding self-loops preserves totality")
}

/// Synthesizes the reset wrapper for `a`: every illegitimate state gets a
/// single recovery edge to a canonical legitimate state (the smallest
/// initial state); legitimate states skip.
///
/// # Panics
///
/// Panics if `a` has no initial state (no recovery target exists).
pub fn synthesize_reset_wrapper(a: &FiniteSystem) -> FiniteSystem {
    let target = a
        .init()
        .iter()
        .next()
        .expect("spec must have an initial state to recover to");
    let legitimate = a.reachable_from_init();
    let mut builder = FiniteSystem::builder(a.num_states());
    for state in 0..a.num_states() {
        builder = builder.initial(state); // the wrapper starts anywhere
        if legitimate.contains(state) {
            builder = builder.edge(state, state);
        } else {
            builder = builder.edge(state, target);
        }
    }
    builder.build().expect("one edge per state")
}

/// Synthesizes a *guided* wrapper: every illegitimate state prefers a
/// **spec edge that lands directly in the legitimate region**, and only
/// falls back to the reset target when the spec offers none. Gentler than
/// the pure reset wrapper when the spec's own edges reach back.
///
/// The one-step-exit restriction is what keeps the synthesis theorem
/// intact: a wrapper edge between two *illegitimate* states could be
/// undone by adversarially scheduled spec edges (the illegitimate SCC
/// would then contain a wrapper edge, admitting a fair divergent
/// computation), so every wrapper edge must leave the illegitimate region
/// immediately.
pub fn synthesize_guided_wrapper(a: &FiniteSystem) -> FiniteSystem {
    let legitimate = a.reachable_from_init();
    let target = a
        .init()
        .iter()
        .next()
        .expect("spec must have an initial state to recover to");
    let mut builder = FiniteSystem::builder(a.num_states());
    for state in 0..a.num_states() {
        builder = builder.initial(state);
        if legitimate.contains(state) {
            builder = builder.edge(state, state);
        } else {
            let step = a.successors(state).find(|next| legitimate.contains(next));
            builder = builder.edge(state, step.unwrap_or(target));
        }
    }
    builder.build().expect("one edge per state")
}

/// Verifies a synthesized wrapper: the weakly fair composition `a ⊓ w`
/// must be stabilizing to the stuttering closure of `a`.
///
/// # Errors
///
/// Returns [`SystemError`] if the systems do not share a state space.
pub fn verify_wrapper(a: &FiniteSystem, w: &FiniteSystem) -> Result<bool, SystemError> {
    let closed = stutter_closure(a);
    let fair = crate::fairness::FairComposition::new(vec![a.clone(), w.clone()])?;
    Ok(fair.is_stabilizing_to(&closed).holds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::check_fair_theorem1;
    use crate::randsys::{random_subsystem, random_system};
    use crate::{figure1, is_stabilizing_to};
    use graybox_rng::rngs::SmallRng;
    use graybox_rng::SeedableRng;

    #[test]
    fn reset_wrapper_fixes_figure1_c() {
        // The paper's counterexample C is not an everywhere implementation
        // of A, but the synthesized wrapper still stabilizes *A itself* —
        // and C when composed fairly, because C's divergent state gets a
        // recovery edge.
        let (a, c) = figure1::systems();
        let w = synthesize_reset_wrapper(&a);
        assert!(verify_wrapper(&a, &w).unwrap());
        // And indeed C ⊓ W (fairly) stabilizes even though C alone does not:
        assert!(!is_stabilizing_to(&c, &a).holds());
        let fair = crate::fairness::FairComposition::new(vec![c, w]).unwrap();
        assert!(fair.is_stabilizing_to(&stutter_closure(&a)).holds());
    }

    #[test]
    fn reset_wrapper_verifies_on_random_specs() {
        for seed in 0..300u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = random_system(&mut rng, 12, 3, 0.3);
            let w = synthesize_reset_wrapper(&a);
            assert!(verify_wrapper(&a, &w).unwrap(), "seed {seed} failed");
        }
    }

    #[test]
    fn guided_wrapper_verifies_on_random_specs() {
        for seed in 0..300u64 {
            let mut rng = SmallRng::seed_from_u64(7_000 + seed);
            let a = random_system(&mut rng, 12, 3, 0.3);
            let w = synthesize_guided_wrapper(&a);
            assert!(verify_wrapper(&a, &w).unwrap(), "seed {seed} failed");
        }
    }

    #[test]
    fn synthesized_wrapper_transfers_to_implementations_by_fair_theorem1() {
        let mut exercised = 0;
        for seed in 0..300u64 {
            let mut rng = SmallRng::seed_from_u64(3_000 + seed);
            let a = random_system(&mut rng, 10, 3, 0.4);
            let a_closed = stutter_closure(&a);
            let c = random_subsystem(&mut rng, &a_closed);
            let w = synthesize_reset_wrapper(&a);
            let out = check_fair_theorem1(&c, &a_closed, &w, &w).unwrap();
            assert!(out.validated(), "seed {seed}");
            exercised += usize::from(out.exercised());
        }
        // The premise (A ⊓ W stabilizing) holds by the synthesis theorem,
        // so virtually every instance is exercised.
        assert!(exercised > 250, "only {exercised} exercised");
    }

    #[test]
    fn guided_wrapper_prefers_direct_spec_exits() {
        // Spec: legit {0}; state 1 has a spec edge into the legit region,
        // state 2 only reaches legit through 1 — too indirect, so the
        // guided wrapper resets it.
        let a = FiniteSystem::builder(3)
            .initial(0)
            .edges([(0, 0), (1, 0), (2, 1)])
            .build()
            .unwrap();
        let w = synthesize_guided_wrapper(&a);
        assert!(w.has_edge(1, 0), "follows the spec's own exit edge");
        assert!(w.has_edge(2, 0), "no one-step exit: falls back to reset");
        let reset = synthesize_reset_wrapper(&a);
        assert!(reset.has_edge(2, 0));
    }

    #[test]
    fn stutter_closure_only_touches_legitimate_states() {
        let a = FiniteSystem::builder(3)
            .initial(0)
            .edges([(0, 1), (1, 0), (2, 2)])
            .build()
            .unwrap();
        let closed = stutter_closure(&a);
        assert!(closed.has_edge(0, 0));
        assert!(closed.has_edge(1, 1));
        assert!(closed.has_edge(2, 2)); // was already there
        assert_eq!(closed.init(), a.init());
    }

    #[test]
    #[should_panic(expected = "initial state")]
    fn synthesis_requires_an_initial_state() {
        let a = FiniteSystem::builder(1).edge(0, 0).build().unwrap();
        let _ = synthesize_reset_wrapper(&a);
    }
}
