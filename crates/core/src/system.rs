use std::collections::BTreeSet;
use std::fmt;

/// Error raised when a [`SystemBuilder`] describes something that is not a
/// system in the paper's sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// A state has no outgoing transition, violating "a set of sequences
    /// with at least one sequence starting from every state".
    NotTotal {
        /// The state with no successor.
        state: usize,
    },
    /// An edge or initial state refers to a state outside `0..num_states`.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// Number of states in the space.
        num_states: usize,
    },
    /// The system has no states at all.
    EmptyStateSpace,
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::NotTotal { state } => {
                write!(f, "state {state} has no outgoing transition")
            }
            SystemError::StateOutOfRange { state, num_states } => {
                write!(f, "state {state} out of range for {num_states} states")
            }
            SystemError::EmptyStateSpace => write!(f, "state space is empty"),
        }
    }
}

impl std::error::Error for SystemError {}

/// A system in the paper's sense, over a finite state space.
///
/// Per §2, a system is a fusion-closed set of state sequences with at least
/// one computation from every state, plus a set of initial states. Over a
/// finite state space `0..num_states`, such a set of sequences is exactly
/// the set of paths of a directed graph whose transition relation is
/// *total* (every state has a successor). `FiniteSystem` stores that graph.
///
/// Specifications (abstract systems) and implementations (concrete systems)
/// are both values of this one type, as in the paper.
///
/// # Example
///
/// ```
/// use graybox_core::FiniteSystem;
///
/// // A two-state flip-flop, starting at state 0.
/// let sys = FiniteSystem::builder(2)
///     .initial(0)
///     .edge(0, 1)
///     .edge(1, 0)
///     .build()?;
/// assert!(sys.has_edge(0, 1));
/// assert_eq!(sys.reachable_from_init(), [0, 1].into_iter().collect());
/// # Ok::<(), graybox_core::SystemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteSystem {
    num_states: usize,
    init: BTreeSet<usize>,
    edges: BTreeSet<(usize, usize)>,
}

impl FiniteSystem {
    /// Starts building a system over states `0..num_states`.
    pub fn builder(num_states: usize) -> SystemBuilder {
        SystemBuilder {
            num_states,
            init: BTreeSet::new(),
            edges: BTreeSet::new(),
        }
    }

    /// Number of states in the state space Σ.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The set of initial states.
    pub fn init(&self) -> &BTreeSet<usize> {
        &self.init
    }

    /// The transition relation, as a sorted edge set.
    pub fn edges(&self) -> &BTreeSet<(usize, usize)> {
        &self.edges
    }

    /// True when `(from, to)` is a transition of this system.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.edges.contains(&(from, to))
    }

    /// Successors of `state`.
    pub fn successors(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .range((state, 0)..=(state, usize::MAX))
            .map(|&(_, to)| to)
    }

    /// States reachable from the given seed set by following transitions
    /// (the seeds themselves included).
    pub fn reachable_from(&self, seeds: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = seeds.into_iter().collect();
        let mut frontier: Vec<usize> = seen.iter().copied().collect();
        while let Some(state) = frontier.pop() {
            for next in self.successors(state) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }

    /// States on computations that start from an initial state.
    pub fn reachable_from_init(&self) -> BTreeSet<usize> {
        self.reachable_from(self.init.iter().copied())
    }

    /// True when there is a path (of length ≥ 1) from `from` to `to`.
    pub fn has_path(&self, from: usize, to: usize) -> bool {
        let mut seen = BTreeSet::new();
        let mut frontier = vec![from];
        while let Some(state) = frontier.pop() {
            for next in self.successors(state) {
                if next == to {
                    return true;
                }
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        false
    }

    /// Enumerates all computations of length `len` starting from `from`
    /// (finite prefixes of the system's computations). Useful for
    /// cross-checking the graph-based relations against the paper's
    /// sequence-based definitions in tests.
    pub fn computations_from(&self, from: usize, len: usize) -> Vec<Vec<usize>> {
        let mut result = Vec::new();
        let mut stack = vec![vec![from]];
        while let Some(path) = stack.pop() {
            if path.len() == len {
                result.push(path);
                continue;
            }
            let last = *path.last().expect("paths are nonempty");
            for next in self.successors(last) {
                let mut extended = path.clone();
                extended.push(next);
                stack.push(extended);
            }
        }
        result
    }
}

impl fmt::Display for FiniteSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "system({} states, init {:?}, {} edges)",
            self.num_states,
            self.init,
            self.edges.len()
        )
    }
}

/// Incremental constructor for [`FiniteSystem`]; validates the paper's
/// totality requirement at [`build`](SystemBuilder::build) time.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    num_states: usize,
    init: BTreeSet<usize>,
    edges: BTreeSet<(usize, usize)>,
}

impl SystemBuilder {
    /// Marks `state` as initial.
    pub fn initial(mut self, state: usize) -> Self {
        self.init.insert(state);
        self
    }

    /// Marks several states as initial.
    pub fn initials(mut self, states: impl IntoIterator<Item = usize>) -> Self {
        self.init.extend(states);
        self
    }

    /// Adds the transition `(from, to)`.
    pub fn edge(mut self, from: usize, to: usize) -> Self {
        self.edges.insert((from, to));
        self
    }

    /// Adds several transitions.
    pub fn edges(mut self, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.edges.extend(edges);
        self
    }

    /// Adds a self-loop on every state that currently has no successor,
    /// modelling quiescence while preserving totality.
    pub fn stutter_quiescent(mut self) -> Self {
        let with_out: BTreeSet<usize> = self.edges.iter().map(|&(from, _)| from).collect();
        for state in 0..self.num_states {
            if !with_out.contains(&state) {
                self.edges.insert((state, state));
            }
        }
        self
    }

    /// Validates and produces the system.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::EmptyStateSpace`] for zero states,
    /// [`SystemError::StateOutOfRange`] if an edge or initial state is out
    /// of range, and [`SystemError::NotTotal`] if some state has no
    /// outgoing transition.
    pub fn build(self) -> Result<FiniteSystem, SystemError> {
        if self.num_states == 0 {
            return Err(SystemError::EmptyStateSpace);
        }
        let check = |state: usize| -> Result<(), SystemError> {
            if state >= self.num_states {
                Err(SystemError::StateOutOfRange {
                    state,
                    num_states: self.num_states,
                })
            } else {
                Ok(())
            }
        };
        for &state in &self.init {
            check(state)?;
        }
        let mut has_out = vec![false; self.num_states];
        for &(from, to) in &self.edges {
            check(from)?;
            check(to)?;
            has_out[from] = true;
        }
        if let Some(state) = has_out.iter().position(|&ok| !ok) {
            return Err(SystemError::NotTotal { state });
        }
        Ok(FiniteSystem {
            num_states: self.num_states,
            init: self.init,
            edges: self.edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3() -> FiniteSystem {
        FiniteSystem::builder(3)
            .initial(0)
            .edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_empty_space() {
        assert_eq!(
            FiniteSystem::builder(0).build().unwrap_err(),
            SystemError::EmptyStateSpace
        );
    }

    #[test]
    fn builder_rejects_partial_relation() {
        let err = FiniteSystem::builder(2).edge(0, 1).build().unwrap_err();
        assert_eq!(err, SystemError::NotTotal { state: 1 });
    }

    #[test]
    fn builder_rejects_out_of_range_edge() {
        let err = FiniteSystem::builder(2)
            .edges([(0, 5), (1, 0)])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SystemError::StateOutOfRange {
                state: 5,
                num_states: 2
            }
        );
    }

    #[test]
    fn builder_rejects_out_of_range_initial() {
        let err = FiniteSystem::builder(1)
            .initial(3)
            .edge(0, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, SystemError::StateOutOfRange { state: 3, .. }));
    }

    #[test]
    fn stutter_quiescent_restores_totality() {
        let sys = FiniteSystem::builder(3)
            .initial(0)
            .edge(0, 1)
            .stutter_quiescent()
            .build()
            .unwrap();
        assert!(sys.has_edge(1, 1));
        assert!(sys.has_edge(2, 2));
        assert!(!sys.has_edge(0, 0));
    }

    #[test]
    fn successors_are_exact() {
        let sys = FiniteSystem::builder(2)
            .initial(0)
            .edges([(0, 0), (0, 1), (1, 1)])
            .build()
            .unwrap();
        let succ: Vec<_> = sys.successors(0).collect();
        assert_eq!(succ, vec![0, 1]);
        let succ1: Vec<_> = sys.successors(1).collect();
        assert_eq!(succ1, vec![1]);
    }

    #[test]
    fn reachability_follows_edges() {
        let sys = FiniteSystem::builder(4)
            .initial(0)
            .edges([(0, 1), (1, 0), (2, 3), (3, 2)])
            .build()
            .unwrap();
        assert_eq!(sys.reachable_from_init(), BTreeSet::from([0, 1]));
        assert_eq!(sys.reachable_from([2]), BTreeSet::from([2, 3]));
    }

    #[test]
    fn has_path_requires_at_least_one_step() {
        let sys = ring3();
        assert!(sys.has_path(0, 0)); // around the ring
        let line = FiniteSystem::builder(2)
            .initial(0)
            .edges([(0, 1), (1, 1)])
            .build()
            .unwrap();
        assert!(!line.has_path(0, 0));
        assert!(line.has_path(0, 1));
        assert!(line.has_path(1, 1)); // self-loop
    }

    #[test]
    fn computations_enumerate_paths() {
        let sys = ring3();
        let comps = sys.computations_from(0, 4);
        assert_eq!(comps, vec![vec![0, 1, 2, 0]]);
        let branching = FiniteSystem::builder(2)
            .initial(0)
            .edges([(0, 0), (0, 1), (1, 1)])
            .build()
            .unwrap();
        let mut comps = branching.computations_from(0, 3);
        comps.sort();
        assert_eq!(comps, vec![vec![0, 0, 0], vec![0, 0, 1], vec![0, 1, 1]]);
    }

    #[test]
    fn display_is_informative() {
        let text = ring3().to_string();
        assert!(text.contains("3 states"));
        assert!(text.contains("3 edges"));
    }
}
