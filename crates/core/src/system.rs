use std::fmt;
use std::sync::OnceLock;

use crate::bitset::StateSet;

/// Error raised when a [`SystemBuilder`] describes something that is not a
/// system in the paper's sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// A state has no outgoing transition, violating "a set of sequences
    /// with at least one sequence starting from every state".
    NotTotal {
        /// The state with no successor.
        state: usize,
    },
    /// An edge or initial state refers to a state outside `0..num_states`.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// Number of states in the space.
        num_states: usize,
    },
    /// The system has no states at all.
    EmptyStateSpace,
    /// A CSR row handed to [`FiniteSystem::try_from_csr`] is malformed:
    /// its offsets are inconsistent, or its successors are unsorted or
    /// duplicated.
    MalformedRow {
        /// The state whose row is malformed (`num_states` when the
        /// offset array itself has the wrong length).
        state: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::NotTotal { state } => {
                write!(f, "state {state} has no outgoing transition")
            }
            SystemError::StateOutOfRange { state, num_states } => {
                write!(f, "state {state} out of range for {num_states} states")
            }
            SystemError::EmptyStateSpace => write!(f, "state space is empty"),
            SystemError::MalformedRow { state } => {
                write!(f, "CSR row of state {state} is malformed")
            }
        }
    }
}

impl std::error::Error for SystemError {}

/// A system in the paper's sense, over a finite state space.
///
/// Per §2, a system is a fusion-closed set of state sequences with at least
/// one computation from every state, plus a set of initial states. Over a
/// finite state space `0..num_states`, such a set of sequences is exactly
/// the set of paths of a directed graph whose transition relation is
/// *total* (every state has a successor). `FiniteSystem` stores that graph.
///
/// Specifications (abstract systems) and implementations (concrete systems)
/// are both values of this one type, as in the paper.
///
/// # Representation
///
/// The transition relation is stored in compressed-sparse-row (CSR) form:
/// a flat, per-source-sorted successor array plus `num_states + 1` row
/// offsets, plus a lazily mirrored reverse CSR for predecessor queries.
/// State sets (initial states, reachability closures) are dense
/// [`StateSet`] bitsets. Two closures every relation check needs — the init-reachable
/// set and the strongly-connected-component id of every state (in
/// reverse topological order) — are
/// computed lazily on first use and cached, in `O(V + E)` total. Both are
/// pure functions of `(init, edges)`, so laziness never changes a query
/// result, equality stays well-defined (caches are excluded from `==`),
/// and systems that are only ever *composed* — e.g. the per-command
/// components of a fair compilation — never pay for caches they do not
/// read.
///
/// # Concurrency
///
/// The lazy caches live in [`std::sync::OnceLock`]s, so every getter —
/// [`scc_ids`](Self::scc_ids), [`predecessors_slice`](Self::predecessors_slice),
/// [`reachable_from_init`](Self::reachable_from_init) and friends — is
/// safe under **concurrent first access** through a shared `&FiniteSystem`:
/// exactly one thread computes the cache, the others block until it is
/// ready, and all observe the same value. Sweep workers can therefore
/// share one compiled system immutably without any pre-warming ritual
/// (pre-touching a cache before a fan-out merely avoids the momentary
/// pile-up on the lock). On machines with more than one core, systems
/// with at least `2^17` states compute their reachability closures and
/// SCC ids with the parallel engines of this crate (level-synchronized
/// BFS, FB-Trim); the values are identical to the sequential ones.
///
/// # Example
///
/// ```
/// use graybox_core::FiniteSystem;
///
/// // A two-state flip-flop, starting at state 0.
/// let sys = FiniteSystem::builder(2)
///     .initial(0)
///     .edge(0, 1)
///     .edge(1, 0)
///     .build()?;
/// assert!(sys.has_edge(0, 1));
/// assert_eq!(*sys.reachable_from_init(), [0, 1].into_iter().collect::<graybox_core::StateSet>());
/// # Ok::<(), graybox_core::SystemError>(())
/// ```
#[derive(Clone)]
pub struct FiniteSystem {
    num_states: usize,
    init: StateSet,
    /// CSR row offsets into `fwd_to`; length `num_states + 1`.
    fwd_off: Vec<usize>,
    /// Flat successor array, sorted and deduplicated per row.
    fwd_to: Vec<usize>,
    /// Lazily built reverse CSR `(rev_off, rev_from)`: offsets of length
    /// `num_states + 1` into the flat, per-target-sorted predecessor
    /// array. Only predecessor queries pay for it.
    rev: OnceLock<(Vec<usize>, Vec<usize>)>,
    /// Lazily cached closure of `init` under the transition relation.
    init_reachable: OnceLock<StateSet>,
    /// Lazily cached `(scc_id per state, scc_count)`; ids in Tarjan pop
    /// order, i.e. reverse topological.
    sccs: OnceLock<(Vec<usize>, usize)>,
}

impl PartialEq for FiniteSystem {
    fn eq(&self, other: &Self) -> bool {
        // The caches are pure functions of these fields.
        self.num_states == other.num_states
            && self.init == other.init
            && self.fwd_off == other.fwd_off
            && self.fwd_to == other.fwd_to
    }
}

impl Eq for FiniteSystem {}

impl fmt::Debug for FiniteSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FiniteSystem")
            .field("num_states", &self.num_states)
            .field("init", &self.init)
            .field("edges", &self.edges().iter().collect::<Vec<_>>())
            .finish()
    }
}

impl FiniteSystem {
    /// Starts building a system over states `0..num_states`.
    pub fn builder(num_states: usize) -> SystemBuilder {
        SystemBuilder {
            num_states,
            init: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Constructs the CSR form and caches from validated parts: `edges`
    /// must be sorted, deduplicated, in-range, and total.
    fn from_sorted_parts(num_states: usize, init: StateSet, edges: &[(usize, usize)]) -> Self {
        let mut fwd_off = vec![0usize; num_states + 1];
        for &(from, _) in edges {
            fwd_off[from + 1] += 1;
        }
        for i in 0..num_states {
            fwd_off[i + 1] += fwd_off[i];
        }
        let fwd_to: Vec<usize> = edges.iter().map(|&(_, to)| to).collect();

        FiniteSystem {
            num_states,
            init,
            fwd_off,
            fwd_to,
            rev: OnceLock::new(),
            init_reachable: OnceLock::new(),
            sccs: OnceLock::new(),
        }
    }

    /// Constructs a system directly from forward CSR rows. Rows must be
    /// sorted, deduplicated, in-range, and total — the streaming GCL
    /// compiler stages each row that way, and debug builds assert it;
    /// unlike
    /// [`builder`](Self::builder), no intermediate `(from, to)` pair list
    /// is ever materialized.
    pub(crate) fn from_csr(
        num_states: usize,
        init: StateSet,
        fwd_off: Vec<usize>,
        fwd_to: Vec<usize>,
    ) -> Result<Self, SystemError> {
        if num_states == 0 {
            return Err(SystemError::EmptyStateSpace);
        }
        // The streaming compiler guarantees well-formed rows (stutter
        // self-loops keep the relation total; `finish_effect` bounds every
        // target), so the per-row checks are debug-only — release builds
        // pay nothing for them.
        debug_assert_eq!(fwd_off.len(), num_states + 1);
        debug_assert_eq!(*fwd_off.last().unwrap(), fwd_to.len());
        #[cfg(debug_assertions)]
        for state in 0..num_states {
            let row = &fwd_to[fwd_off[state]..fwd_off[state + 1]];
            debug_assert!(!row.is_empty(), "state {state} has no successor");
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row must be sorted");
        }
        debug_assert!(fwd_to.iter().all(|&to| to < num_states), "target in range");

        Ok(FiniteSystem {
            num_states,
            init,
            fwd_off,
            fwd_to,
            rev: OnceLock::new(),
            init_reachable: OnceLock::new(),
            sccs: OnceLock::new(),
        })
    }

    /// Constructs a system from forward CSR rows, validating them **in
    /// every build profile**: offsets must be monotone and cover
    /// `fwd_to` exactly, every row must be non-empty (the relation is
    /// total), sorted, and deduplicated, and every successor and initial
    /// state must lie in `0..num_states`.
    ///
    /// This is the entry point for CSR data of *unknown provenance* —
    /// e.g. a transition relation loaded from a file by `graybox-lint`.
    /// The streaming GCL compiler constructs its rows well-formed and
    /// uses the internal debug-checked constructor instead; external
    /// callers get `Result` instead of release-mode undefined behaviour
    /// on malformed rows.
    ///
    /// # Errors
    ///
    /// [`SystemError::EmptyStateSpace`] for zero states,
    /// [`SystemError::MalformedRow`] for inconsistent offsets or
    /// unsorted/duplicated successors, [`SystemError::NotTotal`] for an
    /// empty row, and [`SystemError::StateOutOfRange`] for a successor
    /// or initial state outside the space.
    pub fn try_from_csr(
        num_states: usize,
        init: StateSet,
        fwd_off: Vec<usize>,
        fwd_to: Vec<usize>,
    ) -> Result<Self, SystemError> {
        if num_states == 0 {
            return Err(SystemError::EmptyStateSpace);
        }
        if fwd_off.len() != num_states + 1
            || fwd_off[0] != 0
            || *fwd_off.last().unwrap() != fwd_to.len()
        {
            return Err(SystemError::MalformedRow { state: num_states });
        }
        for state in 0..num_states {
            let (start, end) = (fwd_off[state], fwd_off[state + 1]);
            if start > end || end > fwd_to.len() {
                return Err(SystemError::MalformedRow { state });
            }
            let row = &fwd_to[start..end];
            if row.is_empty() {
                return Err(SystemError::NotTotal { state });
            }
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(SystemError::MalformedRow { state });
            }
            if let Some(&target) = row.iter().find(|&&target| target >= num_states) {
                return Err(SystemError::StateOutOfRange {
                    state: target,
                    num_states,
                });
            }
        }
        if let Some(state) = init.iter().find(|&state| state >= num_states) {
            return Err(SystemError::StateOutOfRange { state, num_states });
        }
        Self::from_csr(num_states, init, fwd_off, fwd_to)
    }

    /// Number of states in the state space Σ.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The set of initial states.
    pub fn init(&self) -> &StateSet {
        &self.init
    }

    /// The transition relation, as a sorted edge-set view.
    pub fn edges(&self) -> Edges<'_> {
        Edges { sys: self }
    }

    /// Number of transitions.
    pub fn edge_count(&self) -> usize {
        self.fwd_to.len()
    }

    /// True when `(from, to)` is a transition of this system.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        from < self.num_states && self.successors_slice(from).binary_search(&to).is_ok()
    }

    /// Successors of `state`, ascending.
    pub fn successors(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        self.successors_slice(state).iter().copied()
    }

    /// Successors of `state` as a sorted slice — the allocation-free view
    /// for hot loops.
    pub fn successors_slice(&self, state: usize) -> &[usize] {
        &self.fwd_to[self.fwd_off[state]..self.fwd_off[state + 1]]
    }

    /// Predecessors of `state`, ascending.
    pub fn predecessors(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        self.predecessors_slice(state).iter().copied()
    }

    /// Predecessors of `state` as a sorted slice (reverse CSR, built on
    /// first predecessor query).
    pub fn predecessors_slice(&self, state: usize) -> &[usize] {
        let (rev_off, rev_from) = self.reverse_csr();
        &rev_from[rev_off[state]..rev_off[state + 1]]
    }

    /// Reverse CSR by counting sort on the target column; scanning the
    /// forward rows in source order keeps each reverse row sorted.
    fn reverse_csr(&self) -> &(Vec<usize>, Vec<usize>) {
        self.rev.get_or_init(|| {
            let mut rev_off = vec![0usize; self.num_states + 1];
            for &to in &self.fwd_to {
                rev_off[to + 1] += 1;
            }
            for i in 0..self.num_states {
                rev_off[i + 1] += rev_off[i];
            }
            let mut cursor = rev_off.clone();
            let mut rev_from = vec![0usize; self.fwd_to.len()];
            for from in 0..self.num_states {
                for &to in &self.fwd_to[self.fwd_off[from]..self.fwd_off[from + 1]] {
                    rev_from[cursor[to]] = from;
                    cursor[to] += 1;
                }
            }
            (rev_off, rev_from)
        })
    }

    /// States reachable from the given seed set by following transitions
    /// (the seeds themselves included). On multi-core machines, systems
    /// with at least `2^17` states fan the walk out across workers (see
    /// [`reachable_from_on`](Self::reachable_from_on)); the resulting
    /// set is identical either way.
    pub fn reachable_from(&self, seeds: impl IntoIterator<Item = usize>) -> StateSet {
        let workers = if self.num_states >= crate::par::PAR_MIN_STATES {
            crate::sweep::available_workers()
        } else {
            1
        };
        self.reachable_from_on(workers, seeds)
    }

    /// [`reachable_from`](Self::reachable_from) with an explicit worker
    /// count: at `workers <= 1` the sequential stack-based walk runs
    /// (the ≤1-core fallback), otherwise a level-synchronized parallel
    /// BFS expands each frontier level across workers into per-worker
    /// buffers merged at the level barrier. Both engines produce the
    /// same closure; the benchmark harness uses the explicit form for
    /// scaling measurements.
    pub fn reachable_from_on(
        &self,
        workers: usize,
        seeds: impl IntoIterator<Item = usize>,
    ) -> StateSet {
        if workers > 1 {
            return crate::par::reach(&crate::par::SysGraph(self), workers, seeds, None, false);
        }
        let mut seen = StateSet::with_capacity(self.num_states);
        let mut frontier: Vec<usize> = Vec::new();
        for seed in seeds {
            if seen.insert(seed) {
                frontier.push(seed);
            }
        }
        while let Some(state) = frontier.pop() {
            for &next in self.successors_slice(state) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }

    /// States on computations that start from an initial state. Computed
    /// on first use and cached; subsequent calls are a cache read.
    pub fn reachable_from_init(&self) -> &StateSet {
        self.init_reachable
            .get_or_init(|| self.reachable_from(self.init.iter()))
    }

    /// The strongly-connected-component id of every state, indexed by
    /// state. Ids are in reverse topological order of the condensation
    /// (sinks get lower ids than their predecessors). Computed on first
    /// use and cached; concurrent first access is safe (see the type's
    /// Concurrency section). The sequential engine (iterative Tarjan)
    /// assigns ids in completion order; the parallel engine (FB-Trim,
    /// engaged on multi-core machines at `2^17`+ states) relabels its
    /// partition into the canonical reverse topological order — both
    /// satisfy the ordering promise and always induce the same
    /// partition.
    ///
    /// An edge `(u, v)` of the system lies on a cycle exactly when
    /// `scc_ids()[u] == scc_ids()[v]` — the `O(1)` test behind
    /// [`is_stabilizing_to`](crate::is_stabilizing_to).
    pub fn scc_ids(&self) -> &[usize] {
        &self.sccs.get_or_init(|| self.compute_sccs()).0
    }

    /// Number of strongly connected components.
    pub fn scc_count(&self) -> usize {
        self.sccs.get_or_init(|| self.compute_sccs()).1
    }

    /// Fresh SCC computation with an explicit engine choice, bypassing
    /// the cache: `workers <= 1` runs the sequential iterative Tarjan
    /// (ids in completion order), more run the parallel FB-Trim
    /// decomposition relabeled into the canonical reverse topological
    /// order. Both orders are reverse topological and the partitions are
    /// always identical (the differential suites assert so). The
    /// benchmark harness uses this for scaling measurements; everything
    /// else should read the cached [`scc_ids`](Self::scc_ids).
    ///
    /// # Panics
    ///
    /// The parallel engine requires state and edge counts that fit
    /// `u32`; pass `workers = 1` for anything larger.
    pub fn sccs_on(&self, workers: usize) -> (Vec<usize>, usize) {
        if workers <= 1 {
            return self.compute_sccs_serial();
        }
        assert!(
            u32::try_from(self.num_states).is_ok() && u32::try_from(self.edge_count()).is_ok(),
            "parallel SCC requires 32-bit state and edge counts"
        );
        self.compute_sccs_parallel(workers)
    }

    /// True when there is a path (of length ≥ 1) from `from` to `to`.
    pub fn has_path(&self, from: usize, to: usize) -> bool {
        let scc_id = self.scc_ids();
        if from != to && scc_id[from] == scc_id[to] {
            return true; // both on a common cycle
        }
        if from == to {
            // A length ≥ 1 path back to itself needs a self-loop or a
            // nontrivial SCC around `from`.
            if self.has_edge(from, from) {
                return true;
            }
            let id = scc_id[from];
            if self
                .successors_slice(from)
                .iter()
                .any(|&next| next != from && scc_id[next] == id)
            {
                return true;
            }
            return false;
        }
        // Cross-SCC query: plain BFS over the CSR rows.
        let mut seen = StateSet::with_capacity(self.num_states);
        let mut frontier = vec![from];
        while let Some(state) = frontier.pop() {
            for &next in self.successors_slice(state) {
                if next == to {
                    return true;
                }
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        false
    }

    /// Enumerates all computations of length `len` starting from `from`
    /// (finite prefixes of the system's computations). Useful for
    /// cross-checking the graph-based relations against the paper's
    /// sequence-based definitions in tests.
    pub fn computations_from(&self, from: usize, len: usize) -> Vec<Vec<usize>> {
        let mut result = Vec::new();
        let mut stack = vec![vec![from]];
        while let Some(path) = stack.pop() {
            if path.len() == len {
                result.push(path);
                continue;
            }
            let last = *path.last().expect("paths are nonempty");
            for next in self.successors(last) {
                let mut extended = path.clone();
                extended.push(next);
                stack.push(extended);
            }
        }
        result
    }

    /// The box composition `self ⊓ other` over a shared state space: edge
    /// union by merging the sorted CSR rows, init intersection by bitwise
    /// AND. Callers validate `num_states` agreement.
    pub(crate) fn box_union(&self, other: &FiniteSystem) -> FiniteSystem {
        debug_assert_eq!(self.num_states, other.num_states);
        let mut edges = Vec::with_capacity(self.edge_count().max(other.edge_count()));
        for state in 0..self.num_states {
            let (a, b) = (self.successors_slice(state), other.successors_slice(state));
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                let next = match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        a[i - 1]
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        b[j - 1]
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        a[i - 1]
                    }
                };
                edges.push((state, next));
            }
            edges.extend(a[i..].iter().map(|&to| (state, to)));
            edges.extend(b[j..].iter().map(|&to| (state, to)));
        }
        FiniteSystem::from_sorted_parts(
            self.num_states,
            self.init.intersection(&other.init),
            &edges,
        )
    }

    /// Engine dispatch for the lazy SCC cache: FB-Trim when more than
    /// one worker is available and the system is big enough to amortize
    /// the fan-out (and small enough for the 32-bit kernels), the
    /// iterative Tarjan otherwise.
    fn compute_sccs(&self) -> (Vec<usize>, usize) {
        let workers = crate::sweep::available_workers();
        if workers > 1
            && self.num_states >= crate::par::PAR_MIN_STATES
            && u32::try_from(self.num_states).is_ok()
            && u32::try_from(self.edge_count()).is_ok()
        {
            self.compute_sccs_parallel(workers)
        } else {
            self.compute_sccs_serial()
        }
    }

    /// FB-Trim over forward + reverse CSR, relabeled canonically so the
    /// documented reverse-topological order holds for any worker count.
    fn compute_sccs_parallel(&self, workers: usize) -> (Vec<usize>, usize) {
        // Build the reverse rows before fanning out, so workers do not
        // pile up on the cache's OnceLock.
        self.reverse_csr();
        let g = crate::par::SysGraph(self);
        let (mut ids, count) = crate::par::fb_trim(&g, workers);
        crate::par::canonical_reverse_topo(&g, &mut ids, count);
        (ids.into_iter().map(|id| id as usize).collect(), count)
    }

    /// Iterative Tarjan over the CSR rows; no per-state allocation.
    fn compute_sccs_serial(&self) -> (Vec<usize>, usize) {
        let n = self.num_states;
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut scc_id = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        // Explicit call stack of (state, position within its CSR row).
        let mut call: Vec<(usize, usize)> = Vec::new();
        let mut next_index = 0usize;
        let mut next_scc = 0usize;

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            call.push((root, 0));
            while let Some(&mut (state, ref mut pos)) = call.last_mut() {
                let row = self.successors_slice(state);
                if *pos < row.len() {
                    let next = row[*pos];
                    *pos += 1;
                    if index[next] == usize::MAX {
                        index[next] = next_index;
                        low[next] = next_index;
                        next_index += 1;
                        stack.push(next);
                        on_stack[next] = true;
                        call.push((next, 0));
                    } else if on_stack[next] {
                        low[state] = low[state].min(index[next]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[state]);
                    }
                    if low[state] == index[state] {
                        while let Some(member) = stack.pop() {
                            on_stack[member] = false;
                            scc_id[member] = next_scc;
                            if member == state {
                                break;
                            }
                        }
                        next_scc += 1;
                    }
                }
            }
        }
        (scc_id, next_scc)
    }
}

impl fmt::Display for FiniteSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "system({} states, init {:?}, {} edges)",
            self.num_states,
            self.init,
            self.edge_count()
        )
    }
}

/// Sorted view of a system's transition relation, yielded by
/// [`FiniteSystem::edges`]. Iterates `(from, to)` pairs in lexicographic
/// order straight off the CSR rows.
#[derive(Clone, Copy)]
pub struct Edges<'a> {
    sys: &'a FiniteSystem,
}

impl<'a> Edges<'a> {
    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.sys.edge_count()
    }

    /// True when the system has no transitions (impossible for a built
    /// system, which is total).
    pub fn is_empty(&self) -> bool {
        self.sys.edge_count() == 0
    }

    /// Iterates the edges in lexicographic order.
    pub fn iter(&self) -> EdgeIter<'a> {
        EdgeIter {
            sys: self.sys,
            state: 0,
            pos: 0,
        }
    }

    /// True when every edge of `self` is an edge of `other` — a merge walk
    /// over each pair of sorted CSR rows.
    pub fn is_subset(&self, other: Edges<'_>) -> bool {
        if self.sys.num_states != other.sys.num_states {
            return false;
        }
        (0..self.sys.num_states).all(|state| {
            let (a, b) = (
                self.sys.successors_slice(state),
                other.sys.successors_slice(state),
            );
            let mut j = 0;
            a.iter().all(|&to| {
                while j < b.len() && b[j] < to {
                    j += 1;
                }
                j < b.len() && b[j] == to
            })
        })
    }
}

impl fmt::Debug for Edges<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for Edges<'a> {
    type Item = (usize, usize);
    type IntoIter = EdgeIter<'a>;
    fn into_iter(self) -> EdgeIter<'a> {
        self.iter()
    }
}

/// Lexicographic iterator over a system's edges.
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    sys: &'a FiniteSystem,
    state: usize,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.state < self.sys.num_states {
            let row = self.sys.successors_slice(self.state);
            if self.pos < row.len() {
                let edge = (self.state, row[self.pos]);
                self.pos += 1;
                return Some(edge);
            }
            self.state += 1;
            self.pos = 0;
        }
        None
    }
}

/// Incremental constructor for [`FiniteSystem`]; validates the paper's
/// totality requirement at [`build`](SystemBuilder::build) time.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    num_states: usize,
    init: Vec<usize>,
    edges: Vec<(usize, usize)>,
}

impl SystemBuilder {
    /// Marks `state` as initial.
    pub fn initial(mut self, state: usize) -> Self {
        self.init.push(state);
        self
    }

    /// Marks several states as initial.
    pub fn initials(mut self, states: impl IntoIterator<Item = usize>) -> Self {
        self.init.extend(states);
        self
    }

    /// Adds the transition `(from, to)`.
    pub fn edge(mut self, from: usize, to: usize) -> Self {
        self.edges.push((from, to));
        self
    }

    /// Adds several transitions.
    pub fn edges(mut self, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.edges.extend(edges);
        self
    }

    /// Adds a self-loop on every state that currently has no successor,
    /// modelling quiescence while preserving totality.
    pub fn stutter_quiescent(mut self) -> Self {
        let mut with_out = vec![false; self.num_states];
        for &(from, _) in &self.edges {
            if from < self.num_states {
                with_out[from] = true;
            }
        }
        for (state, &has_out) in with_out.iter().enumerate() {
            if !has_out {
                self.edges.push((state, state));
            }
        }
        self
    }

    /// Validates and produces the system.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::EmptyStateSpace`] for zero states,
    /// [`SystemError::StateOutOfRange`] if an edge or initial state is out
    /// of range, and [`SystemError::NotTotal`] if some state has no
    /// outgoing transition.
    pub fn build(mut self) -> Result<FiniteSystem, SystemError> {
        if self.num_states == 0 {
            return Err(SystemError::EmptyStateSpace);
        }
        let check = |state: usize| -> Result<(), SystemError> {
            if state >= self.num_states {
                Err(SystemError::StateOutOfRange {
                    state,
                    num_states: self.num_states,
                })
            } else {
                Ok(())
            }
        };
        let mut init = StateSet::with_capacity(self.num_states);
        for &state in &self.init {
            check(state)?;
            init.insert(state);
        }
        let mut has_out = vec![false; self.num_states];
        for &(from, to) in &self.edges {
            check(from)?;
            check(to)?;
            has_out[from] = true;
        }
        if let Some(state) = has_out.iter().position(|&ok| !ok) {
            return Err(SystemError::NotTotal { state });
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        Ok(FiniteSystem::from_sorted_parts(
            self.num_states,
            init,
            &self.edges,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSet;

    fn ring3() -> FiniteSystem {
        FiniteSystem::builder(3)
            .initial(0)
            .edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_empty_space() {
        assert_eq!(
            FiniteSystem::builder(0).build().unwrap_err(),
            SystemError::EmptyStateSpace
        );
    }

    #[test]
    fn builder_rejects_partial_relation() {
        let err = FiniteSystem::builder(2).edge(0, 1).build().unwrap_err();
        assert_eq!(err, SystemError::NotTotal { state: 1 });
    }

    #[test]
    fn builder_rejects_out_of_range_edge() {
        let err = FiniteSystem::builder(2)
            .edges([(0, 5), (1, 0)])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            SystemError::StateOutOfRange {
                state: 5,
                num_states: 2
            }
        );
    }

    #[test]
    fn builder_rejects_out_of_range_initial() {
        let err = FiniteSystem::builder(1)
            .initial(3)
            .edge(0, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, SystemError::StateOutOfRange { state: 3, .. }));
    }

    #[test]
    fn builder_deduplicates_edges() {
        let sys = FiniteSystem::builder(2)
            .initial(0)
            .edges([(0, 1), (0, 1), (1, 0), (0, 1)])
            .build()
            .unwrap();
        assert_eq!(sys.edge_count(), 2);
        assert_eq!(sys.successors_slice(0), &[1]);
    }

    #[test]
    fn stutter_quiescent_restores_totality() {
        let sys = FiniteSystem::builder(3)
            .initial(0)
            .edge(0, 1)
            .stutter_quiescent()
            .build()
            .unwrap();
        assert!(sys.has_edge(1, 1));
        assert!(sys.has_edge(2, 2));
        assert!(!sys.has_edge(0, 0));
    }

    #[test]
    fn successors_are_exact() {
        let sys = FiniteSystem::builder(2)
            .initial(0)
            .edges([(0, 0), (0, 1), (1, 1)])
            .build()
            .unwrap();
        let succ: Vec<_> = sys.successors(0).collect();
        assert_eq!(succ, vec![0, 1]);
        let succ1: Vec<_> = sys.successors(1).collect();
        assert_eq!(succ1, vec![1]);
    }

    #[test]
    fn predecessors_mirror_successors() {
        let sys = FiniteSystem::builder(3)
            .initial(0)
            .edges([(0, 1), (1, 2), (2, 0), (0, 2)])
            .build()
            .unwrap();
        assert_eq!(sys.predecessors_slice(2), &[0, 1]);
        assert_eq!(sys.predecessors(0).collect::<Vec<_>>(), vec![2]);
        for from in 0..3 {
            for to in 0..3 {
                assert_eq!(
                    sys.has_edge(from, to),
                    sys.predecessors_slice(to).contains(&from),
                );
            }
        }
    }

    #[test]
    fn edges_iterate_in_lexicographic_order() {
        let sys = FiniteSystem::builder(3)
            .initial(0)
            .edges([(2, 0), (0, 2), (0, 1), (1, 1)])
            .build()
            .unwrap();
        let all: Vec<_> = sys.edges().iter().collect();
        assert_eq!(all, vec![(0, 1), (0, 2), (1, 1), (2, 0)]);
        assert_eq!(sys.edges().len(), 4);
    }

    #[test]
    fn edge_subset_matches_pairwise_containment() {
        let big = FiniteSystem::builder(3)
            .initial(0)
            .edges([(0, 1), (0, 2), (1, 1), (2, 0)])
            .build()
            .unwrap();
        let small = FiniteSystem::builder(3)
            .initial(0)
            .edges([(0, 2), (1, 1), (2, 0)])
            .build()
            .unwrap();
        assert!(small.edges().is_subset(big.edges()));
        assert!(!big.edges().is_subset(small.edges()));
        assert!(big.edges().is_subset(big.edges()));
    }

    #[test]
    fn reachability_follows_edges() {
        let sys = FiniteSystem::builder(4)
            .initial(0)
            .edges([(0, 1), (1, 0), (2, 3), (3, 2)])
            .build()
            .unwrap();
        assert_eq!(
            *sys.reachable_from_init(),
            [0, 1].into_iter().collect::<StateSet>()
        );
        assert_eq!(
            sys.reachable_from([2]),
            [2, 3].into_iter().collect::<StateSet>()
        );
    }

    #[test]
    fn scc_ids_partition_and_order() {
        let sys = FiniteSystem::builder(5)
            .initial(0)
            .edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (4, 4)])
            .build()
            .unwrap();
        let ids = sys.scc_ids();
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_ne!(ids[0], ids[2]);
        assert_eq!(sys.scc_count(), 3);
        // Reverse topological: {2,3} (a sink) completes before {0,1}.
        assert!(ids[2] < ids[0]);
    }

    #[test]
    fn has_path_requires_at_least_one_step() {
        let sys = ring3();
        assert!(sys.has_path(0, 0)); // around the ring
        let line = FiniteSystem::builder(2)
            .initial(0)
            .edges([(0, 1), (1, 1)])
            .build()
            .unwrap();
        assert!(!line.has_path(0, 0));
        assert!(line.has_path(0, 1));
        assert!(line.has_path(1, 1)); // self-loop
    }

    #[test]
    fn has_path_crosses_scc_boundaries() {
        let sys = FiniteSystem::builder(4)
            .initial(0)
            .edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 3)])
            .build()
            .unwrap();
        assert!(sys.has_path(0, 3));
        assert!(!sys.has_path(3, 0));
        assert!(!sys.has_path(2, 2)); // singleton SCC, no self-loop
    }

    #[test]
    fn computations_enumerate_paths() {
        let sys = ring3();
        let comps = sys.computations_from(0, 4);
        assert_eq!(comps, vec![vec![0, 1, 2, 0]]);
        let branching = FiniteSystem::builder(2)
            .initial(0)
            .edges([(0, 0), (0, 1), (1, 1)])
            .build()
            .unwrap();
        let mut comps = branching.computations_from(0, 3);
        comps.sort();
        assert_eq!(comps, vec![vec![0, 0, 0], vec![0, 0, 1], vec![0, 1, 1]]);
    }

    #[test]
    fn display_is_informative() {
        let text = ring3().to_string();
        assert!(text.contains("3 states"));
        assert!(text.contains("3 edges"));
    }

    #[test]
    fn explicit_engines_agree_with_the_cached_defaults() {
        // A few hundred states with mixed SCC structure: three rings
        // bridged into a chain plus stutter tails.
        let mut builder = FiniteSystem::builder(300).initial(0);
        for ring in 0..3usize {
            let base = ring * 90;
            for i in 0..90 {
                builder = builder.edge(base + i, base + (i + 1) % 90);
            }
            if ring > 0 {
                builder = builder.edge(base - 90, base);
            }
        }
        let sys = builder.stutter_quiescent().build().unwrap();

        let serial = sys.reachable_from_on(1, [0usize, 271]);
        let parallel = sys.reachable_from_on(4, [0usize, 271]);
        assert_eq!(serial, parallel);

        let (ser_ids, ser_count) = sys.sccs_on(1);
        let (par_ids, par_count) = sys.sccs_on(4);
        assert_eq!(ser_count, par_count);
        assert_eq!(ser_ids.len(), par_ids.len());
        // Same partition, possibly different (but both reverse
        // topological) labels.
        let mut pairs = std::collections::HashMap::new();
        for (&a, &b) in ser_ids.iter().zip(&par_ids) {
            assert_eq!(*pairs.entry(a).or_insert(b), b);
        }
        // Cached getters agree with whichever engine the cache dispatch
        // picked.
        assert_eq!(sys.scc_count(), ser_count);
    }

    #[test]
    fn cache_getters_are_safe_under_concurrent_first_access() {
        // Several threads race the first access of every lazy cache
        // through a shared reference; all must observe the same values
        // (OnceLock computes each cache exactly once).
        let mut builder = FiniteSystem::builder(500).initial(0);
        for i in 0..500 {
            builder = builder.edge(i, (i * 7 + 1) % 500).edge(i, (i + 250) % 500);
        }
        let sys = builder.build().unwrap();
        let views = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        (
                            sys.scc_ids().to_vec(),
                            sys.scc_count(),
                            sys.reachable_from_init().clone(),
                            sys.predecessors_slice(3).to_vec(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for view in &views[1..] {
            assert_eq!(view, &views[0]);
        }
    }

    #[test]
    fn try_from_csr_accepts_well_formed_rows() {
        let init: StateSet = [0].into_iter().collect();
        let sys = FiniteSystem::try_from_csr(3, init, vec![0, 1, 3, 4], vec![1, 0, 2, 2]).unwrap();
        assert_eq!(sys, ring3_with_extra());
        fn ring3_with_extra() -> FiniteSystem {
            FiniteSystem::builder(3)
                .initial(0)
                .edges([(0, 1), (1, 0), (1, 2), (2, 2)])
                .build()
                .unwrap()
        }
    }

    #[test]
    fn try_from_csr_rejects_malformed_input() {
        let init = || [0].into_iter().collect::<StateSet>();
        // Empty space.
        assert_eq!(
            FiniteSystem::try_from_csr(0, StateSet::with_capacity(0), vec![0], vec![]),
            Err(SystemError::EmptyStateSpace)
        );
        // Offset array of the wrong length.
        assert_eq!(
            FiniteSystem::try_from_csr(2, init(), vec![0, 1], vec![0]),
            Err(SystemError::MalformedRow { state: 2 })
        );
        // Offsets not covering the successor array.
        assert_eq!(
            FiniteSystem::try_from_csr(2, init(), vec![0, 1, 3], vec![0, 1]),
            Err(SystemError::MalformedRow { state: 2 })
        );
        // Non-monotone offsets.
        assert_eq!(
            FiniteSystem::try_from_csr(3, init(), vec![0, 2, 1, 2], vec![0, 1]),
            Err(SystemError::MalformedRow { state: 1 })
        );
        // Empty row: the relation is not total.
        assert_eq!(
            FiniteSystem::try_from_csr(2, init(), vec![0, 0, 2], vec![0, 1]),
            Err(SystemError::NotTotal { state: 0 })
        );
        // Unsorted row.
        assert_eq!(
            FiniteSystem::try_from_csr(2, init(), vec![0, 2, 3], vec![1, 0, 0]),
            Err(SystemError::MalformedRow { state: 0 })
        );
        // Duplicated successor.
        assert_eq!(
            FiniteSystem::try_from_csr(2, init(), vec![0, 2, 3], vec![0, 0, 1]),
            Err(SystemError::MalformedRow { state: 0 })
        );
        // Successor out of range.
        assert_eq!(
            FiniteSystem::try_from_csr(2, init(), vec![0, 1, 2], vec![1, 5]),
            Err(SystemError::StateOutOfRange {
                state: 5,
                num_states: 2
            })
        );
        // Initial state out of range.
        let far_init: StateSet = [4].into_iter().collect();
        assert_eq!(
            FiniteSystem::try_from_csr(2, far_init, vec![0, 1, 2], vec![1, 0]),
            Err(SystemError::StateOutOfRange {
                state: 4,
                num_states: 2
            })
        );
    }
}
