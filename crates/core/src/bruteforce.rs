//! Brute-force definitional checkers, for cross-validating the graph
//! algorithms.
//!
//! [`is_stabilizing_to`](crate::is_stabilizing_to) decides stabilization
//! with an SCC/cycle argument. This module re-decides it **from the
//! definition**: a finite system's infinite computations are exactly its
//! lassos (a finite stem followed by a repeated cycle), and a lasso
//! stabilizes iff from some index onward every edge is a legitimate
//! `A`-transition — which, for an eventually periodic sequence, means the
//! cycle's edges are all legitimate. Enumerating all simple cycles is
//! exponential; it is used only on tiny systems, in property tests that
//! pit the two deciders against each other on thousands of random
//! instances ([`crate::randsys`]).

use crate::{FiniteSystem, StateSet};

/// Enumerates every simple cycle of the system (as edge lists). Only
/// sensible for small systems (≤ ~10 states).
pub fn simple_cycles(sys: &FiniteSystem) -> Vec<Vec<(usize, usize)>> {
    let mut cycles = Vec::new();
    let n = sys.num_states();
    // For each start state, DFS over paths that only visit states >= start
    // (Johnson-style canonicalization to avoid duplicates).
    let mut path: Vec<usize> = Vec::with_capacity(n);
    let mut on_path = StateSet::with_capacity(n);
    for start in 0..n {
        path.clear();
        path.push(start);
        on_path.clear();
        on_path.insert(start);
        dfs(sys, start, start, &mut path, &mut on_path, &mut cycles);
    }
    cycles
}

fn dfs(
    sys: &FiniteSystem,
    start: usize,
    current: usize,
    path: &mut Vec<usize>,
    on_path: &mut StateSet,
    cycles: &mut Vec<Vec<(usize, usize)>>,
) {
    for &next in sys.successors_slice(current) {
        if next == start {
            let mut cycle: Vec<(usize, usize)> = path.windows(2).map(|w| (w[0], w[1])).collect();
            cycle.push((current, start));
            cycles.push(cycle);
        } else if next > start && !on_path.contains(next) {
            path.push(next);
            on_path.insert(next);
            dfs(sys, start, next, path, on_path, cycles);
            path.pop();
            on_path.remove(next);
        }
    }
}

/// Decides "every infinite computation of `c` has a suffix that is a
/// suffix of an init-anchored computation of `a`" straight from the lasso
/// characterization: for every simple cycle of `c` that is reachable from
/// anywhere (all are — stabilization quantifies over computations from
/// every state), all of its edges must be legitimate `a`-transitions.
///
/// Non-simple recurrent behaviours visit a union of touching simple
/// cycles; if each simple cycle is fully legitimate, so is any
/// combination, hence checking simple cycles suffices.
pub fn is_stabilizing_bruteforce(c: &FiniteSystem, a: &FiniteSystem) -> bool {
    if c.num_states() != a.num_states() {
        return false;
    }
    let legitimate = a.reachable_from_init();
    let edge_ok = |(from, to): (usize, usize)| {
        a.has_edge(from, to) && legitimate.contains(from) && legitimate.contains(to)
    };
    simple_cycles(c)
        .iter()
        .all(|cycle| cycle.iter().all(|&edge| edge_ok(edge)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randsys::{random_subsystem, random_system};
    use crate::{figure1, is_stabilizing_to};
    use graybox_rng::rngs::SmallRng;
    use graybox_rng::SeedableRng;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    #[test]
    fn simple_cycles_of_a_ring() {
        let ring = sys(3, &[0], &[(0, 1), (1, 2), (2, 0)]);
        let cycles = simple_cycles(&ring);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn simple_cycles_count_self_loops_and_two_cycles() {
        let s = sys(2, &[0], &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let cycles = simple_cycles(&s);
        // (0,0), (1,1), and 0->1->0.
        assert_eq!(cycles.len(), 3);
    }

    #[test]
    fn bruteforce_agrees_on_figure1() {
        let (a, c) = figure1::systems();
        assert!(!is_stabilizing_bruteforce(&c, &a));
        assert!(is_stabilizing_bruteforce(&a, &a));
        assert_eq!(
            is_stabilizing_bruteforce(&c, &a),
            is_stabilizing_to(&c, &a).holds()
        );
    }

    #[test]
    fn bruteforce_and_scc_checker_agree_on_random_instances() {
        // The core cross-validation: two independent deciders, thousands
        // of random instances, zero disagreements.
        let mut agree_positive = 0;
        let mut agree_negative = 0;
        for seed in 0..2_000u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = random_system(&mut rng, 6, 2, 0.4);
            let c = if seed % 2 == 0 {
                random_system(&mut rng, 6, 2, 0.4)
            } else {
                random_subsystem(&mut rng, &a)
            };
            let fast = is_stabilizing_to(&c, &a).holds();
            let slow = is_stabilizing_bruteforce(&c, &a);
            assert_eq!(fast, slow, "seed {seed}: SCC={fast} bruteforce={slow}");
            if fast {
                agree_positive += 1;
            } else {
                agree_negative += 1;
            }
        }
        // Both outcomes must actually occur, or the test proves nothing.
        assert!(agree_positive > 50, "only {agree_positive} positive cases");
        assert!(agree_negative > 50, "only {agree_negative} negative cases");
    }

    #[test]
    fn mismatched_spaces_do_not_stabilize() {
        let a = sys(2, &[0], &[(0, 0), (1, 1)]);
        let c = sys(3, &[0], &[(0, 0), (1, 1), (2, 2)]);
        assert!(!is_stabilizing_bruteforce(&c, &a));
    }
}
