//! The §2.2 graybox design method: level-1 and level-2 wrappers.
//!
//! *"In any system that consists of multiple processes, faults occur at
//! two levels: (1) internal to a process, or (2) in the interface between
//! processes. We may deal with these two levels separately."* (§2.2)
//!
//! * A **level-1 wrapper** is a *local* wrapper `W_i` over process `i`'s
//!   own state: it restores the process to an internally consistent state.
//!   [`synthesize_level1`] builds one per process by applying the reset
//!   synthesis of [`crate::synthesis`] to each local specification, and
//!   lifts them to the global space via [`LocalFamily`].
//! * A **level-2 wrapper** is a *global* wrapper restoring mutual
//!   consistency between processes. Per the paper it is designed
//!   *optimistically*: it assumes internal consistency and only handles
//!   states whose components are all locally legitimate —
//!   [`synthesize_level2`] skips (stutters) everywhere else, trusting the
//!   level-1 wrappers to get it there.
//!
//! [`TwoLevelDesign::verify`] checks the complete method: the weakly fair
//! composition of the system with all level-1 wrappers and the level-2
//! wrapper must stabilize to the target specification. The tests carry the
//! paper's moral as a worked instance: level-1 alone cannot fix mutual
//! inconsistency, the optimistic level-2 alone cannot fix internal
//! corruption, and the two together stabilize.

use crate::fairness::FairComposition;
use crate::synthesis::{stutter_closure, synthesize_reset_wrapper};
use crate::theorems::LocalFamily;
use crate::{FiniteSystem, StateSet, SystemError};

/// A §2.2 design: per-process level-1 wrappers (already lifted to the
/// global space) plus one global level-2 wrapper.
#[derive(Debug, Clone)]
pub struct TwoLevelDesign {
    level1: Vec<FiniteSystem>,
    level2: FiniteSystem,
}

impl TwoLevelDesign {
    /// Assembles a design from lifted level-1 wrappers and a level-2
    /// wrapper.
    pub fn new(level1: Vec<FiniteSystem>, level2: FiniteSystem) -> Self {
        TwoLevelDesign { level1, level2 }
    }

    /// The lifted level-1 wrappers.
    pub fn level1(&self) -> &[FiniteSystem] {
        &self.level1
    }

    /// The level-2 wrapper.
    pub fn level2(&self) -> &FiniteSystem {
        &self.level2
    }

    /// Verifies the method: the weakly fair composition of `system` with
    /// every wrapper of this design stabilizes to the stuttering closure
    /// of `target`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the systems do not share a state space.
    pub fn verify(
        &self,
        system: &FiniteSystem,
        target: &FiniteSystem,
    ) -> Result<bool, SystemError> {
        let mut components = vec![system.clone()];
        components.extend(self.level1.iter().cloned());
        components.push(self.level2.clone());
        let fair = FairComposition::new(components)?;
        Ok(fair.is_stabilizing_to(&stutter_closure(target)).holds())
    }
}

/// Synthesizes the level-1 wrappers for a family of local specifications:
/// per process, the local reset wrapper (illegitimate local states jump to
/// the local initial state), lifted to the global space.
///
/// # Errors
///
/// Returns [`SystemError`] if the family is malformed.
pub fn synthesize_level1(family: &LocalFamily) -> Result<Vec<FiniteSystem>, SystemError> {
    let local_wrappers: Vec<FiniteSystem> = (0..family.len())
        .map(|i| synthesize_reset_wrapper(family.local(i)))
        .collect();
    let wrapper_family = LocalFamily::new(local_wrappers);
    (0..wrapper_family.len())
        .map(|i| wrapper_family.lift(i))
        .collect()
}

/// Synthesizes the optimistic level-2 wrapper: among global states whose
/// components are **all locally legitimate**, illegitimate-for-the-target
/// states get a recovery edge to a canonical target-initial state; every
/// other state (including internally inconsistent ones) just stutters —
/// "the level (2) wrapper optimistically … assum[es] that the processes
/// are in internally consistent states" (§2.2).
///
/// # Errors
///
/// Returns [`SystemError`] if the spaces disagree.
pub fn synthesize_level2(
    family: &LocalFamily,
    target: &FiniteSystem,
) -> Result<FiniteSystem, SystemError> {
    let total = family.global_states();
    if total != target.num_states() {
        return Err(SystemError::StateOutOfRange {
            state: total.max(target.num_states()) - 1,
            num_states: total.min(target.num_states()),
        });
    }
    let locally_legit: Vec<&StateSet> = (0..family.len())
        .map(|i| family.local(i).reachable_from_init())
        .collect();
    let internally_consistent = |global: usize| {
        family
            .decode(global)
            .iter()
            .zip(&locally_legit)
            .all(|(part, legit)| legit.contains(part))
    };
    let target_legit = target.reachable_from_init();
    let recovery = target
        .init()
        .iter()
        .next()
        .ok_or(SystemError::EmptyStateSpace)?;
    let mut builder = FiniteSystem::builder(total);
    for state in 0..total {
        builder = builder.initial(state);
        if internally_consistent(state) && !target_legit.contains(state) {
            builder = builder.edge(state, recovery);
        } else {
            builder = builder.edge(state, state);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    /// The worked instance. Each process holds a bit-with-corruption:
    /// local states {0, 1, 2}, where 2 is internally corrupt; the local
    /// spec allows staying at 0 or 1 (both locally legitimate) and demands
    /// nothing at 2. Globally, the *target* is agreement: legitimate
    /// states are (0,0) and (1,1), where the pair may toggle together.
    fn local_spec() -> FiniteSystem {
        sys(3, &[0, 1], &[(0, 0), (1, 1), (2, 2)])
    }

    fn family() -> LocalFamily {
        LocalFamily::new(vec![local_spec(), local_spec()])
    }

    /// Global target over the 9-state product (mixed radix, component 0
    /// least significant): agreement states (0,0)=0 and (1,1)=4 toggle
    /// together; everything else is illegitimate.
    fn agreement_target() -> FiniteSystem {
        let f = family();
        let encode = |a: usize, b: usize| f.encode(&[a, b]);
        let mut builder = FiniteSystem::builder(9)
            .initial(encode(0, 0))
            .initial(encode(1, 1))
            .edge(encode(0, 0), encode(1, 1))
            .edge(encode(1, 1), encode(0, 0));
        for state in 0..9 {
            if state != encode(0, 0) && state != encode(1, 1) {
                builder = builder.edge(state, state);
            }
        }
        builder.build().unwrap()
    }

    /// The "implementation": each process just sits on its current value
    /// (an everywhere implementation of its local spec — and of nothing
    /// more). Composed over the family.
    fn system() -> FiniteSystem {
        family().compose().unwrap()
    }

    #[test]
    fn level1_alone_cannot_fix_mutual_inconsistency() {
        let level1 = synthesize_level1(&family()).unwrap();
        let design = TwoLevelDesign::new(level1, idle_wrapper());
        // State (0,1) is internally consistent everywhere but globally
        // illegitimate; level-1 wrappers skip there forever.
        assert!(!design.verify(&system(), &agreement_target()).unwrap());
    }

    #[test]
    fn optimistic_level2_alone_cannot_fix_internal_corruption() {
        let level2 = synthesize_level2(&family(), &agreement_target()).unwrap();
        let design = TwoLevelDesign::new(vec![], level2);
        // State (2,0) has an internally corrupt component; the optimistic
        // level-2 wrapper stutters there by design.
        assert!(!design.verify(&system(), &agreement_target()).unwrap());
    }

    #[test]
    fn the_two_levels_together_stabilize() {
        let level1 = synthesize_level1(&family()).unwrap();
        let level2 = synthesize_level2(&family(), &agreement_target()).unwrap();
        let design = TwoLevelDesign::new(level1.clone(), level2);
        assert!(design.verify(&system(), &agreement_target()).unwrap());
        assert_eq!(design.level1().len(), 2);
        assert!(design.level2().num_states() == 9);
    }

    #[test]
    fn level1_wrappers_only_touch_their_component() {
        let level1 = synthesize_level1(&family()).unwrap();
        let f = family();
        for (i, wrapper) in level1.iter().enumerate() {
            for (from, to) in wrapper.edges() {
                let (pf, pt) = (f.decode(from), f.decode(to));
                for (component, (a, b)) in pf.iter().zip(&pt).enumerate() {
                    if component != i {
                        assert_eq!(a, b, "level-1 wrapper {i} touched component {component}");
                    }
                }
            }
        }
    }

    #[test]
    fn level2_wrapper_stutters_at_internally_corrupt_states() {
        let f = family();
        let level2 = synthesize_level2(&f, &agreement_target()).unwrap();
        let corrupt = f.encode(&[2, 0]);
        let succ: Vec<usize> = level2.successors(corrupt).collect();
        assert_eq!(succ, vec![corrupt], "optimism violated");
        // But it does act at the mutually inconsistent (0,1):
        let mixed = f.encode(&[0, 1]);
        let succ: Vec<usize> = level2.successors(mixed).collect();
        assert_eq!(succ, vec![f.encode(&[0, 0])]);
    }

    fn idle_wrapper() -> FiniteSystem {
        let mut builder = FiniteSystem::builder(9);
        for state in 0..9 {
            builder = builder.initial(state).edge(state, state);
        }
        builder.build().unwrap()
    }

    #[test]
    fn mismatched_spaces_are_rejected() {
        let small_target = sys(2, &[0], &[(0, 0), (1, 0)]);
        assert!(synthesize_level2(&family(), &small_target).is_err());
    }
}
