//! Dijkstra's K-state token ring, as a second worked example.
//!
//! The paper contrasts its specification-level approach with classic
//! *implementation-level* stabilization; Dijkstra's K-state mutual
//! exclusion ring is the canonical example of the latter and a good
//! stress test for the model checker: the ring's own transitions perform
//! the convergence, with no wrapper.
//!
//! Processes `0..n` each hold `x[i] ∈ 0..k`. The *bottom* machine is
//! privileged when `x[0] = x[n-1]` and then sets `x[0] := (x[0]+1) mod k`;
//! machine `i > 0` is privileged when `x[i] ≠ x[i-1]` and then copies
//! `x[i] := x[i-1]`. Legitimate states are those with exactly one
//! privilege. Dijkstra's theorem: for `k ≥ n` the ring stabilizes from any
//! state.
//!
//! # Example
//!
//! ```
//! use graybox_core::dijkstra;
//!
//! let ring = dijkstra::ring(3, 3).unwrap();
//! assert!(ring.stabilizes().holds());
//! ```

use crate::fairness::FairComposition;
use crate::gcl::{GclError, Program};
use crate::relations::StabilizationReport;
use crate::FiniteSystem;

/// A compiled K-state ring instance together with its legitimacy spec.
#[derive(Debug)]
pub struct Ring {
    n: usize,
    k: usize,
    fair: FairComposition,
    spec: FiniteSystem,
}

/// Builds the `n`-process, `k`-state ring and its specification system.
///
/// # Errors
///
/// Returns [`GclError`] if the state space `k^n` exceeds the compiler cap
/// or the parameters are degenerate (`n < 2` or `k < 2` are rejected as
/// [`GclError::NoInitialState`] would be misleading; they produce
/// [`GclError::EmptyDomain`] for `k = 0` and are otherwise permitted).
pub fn ring(n: usize, k: usize) -> Result<Ring, GclError> {
    let mut program = Program::new();
    let vars: Vec<_> = (0..n).map(|i| program.var(format!("x{i}"), k)).collect();
    // Bottom machine.
    {
        let x0 = vars[0];
        let x_last = vars[n - 1];
        program.command(
            "bottom",
            move |s| s.get(x0) == s.get(x_last),
            move |s| s.set(x0, (s.get(x0) + 1) % k),
        );
    }
    // Other machines.
    for i in 1..n {
        let xi = vars[i];
        let prev = vars[i - 1];
        program.command(
            format!("copy{i}"),
            move |s| s.get(xi) != s.get(prev),
            move |s| s.set(xi, s.get(prev)),
        );
    }
    let (fair, compiled) = program.compile_fair(|_| true)?;

    // The specification: computations that stay within legitimate states
    // (exactly one privilege), moving by protocol steps. Illegitimate
    // states stutter in the spec (and are not initial), so they are
    // illegitimate in the model checker's sense too.
    let total = compiled.system().num_states();
    let legit = |state: usize| -> bool {
        let values = compiled.decode(state);
        privileges(&values, k) == 1
    };
    let mut builder = FiniteSystem::builder(total);
    for state in 0..total {
        if legit(state) {
            builder = builder.initial(state);
            // Stuttering closure: the fair execution model lets disabled
            // commands skip, so legitimate behaviour includes self-loops.
            builder = builder.edge(state, state);
            for next in compiled.system().successors(state) {
                if legit(next) {
                    builder = builder.edge(state, next);
                }
            }
        } else {
            builder = builder.edge(state, state);
        }
    }
    let spec = builder.build()?;
    Ok(Ring { n, k, fair, spec })
}

/// Number of privileged machines in a configuration.
pub fn privileges(values: &[usize], k: usize) -> usize {
    let n = values.len();
    let _ = k;
    let mut count = 0;
    if values[0] == values[n - 1] {
        count += 1;
    }
    for i in 1..n {
        if values[i] != values[i - 1] {
            count += 1;
        }
    }
    count
}

impl Ring {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of clock states per process.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The fair composition of the ring's per-process commands.
    pub fn fair(&self) -> &FairComposition {
        &self.fair
    }

    /// The legitimacy specification system.
    pub fn spec(&self) -> &FiniteSystem {
        &self.spec
    }

    /// Model-checks "the ring is stabilizing to its legitimacy spec" under
    /// weakly fair scheduling.
    pub fn stabilizes(&self) -> StabilizationReport {
        self.fair.is_stabilizing_to(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privileges_counts_correctly() {
        // n=3: [0,0,0]: bottom privileged (x0==x2), others equal: 1.
        assert_eq!(privileges(&[0, 0, 0], 3), 1);
        // [1,0,0]: bottom not (1 != 0)? x0=1,x2=0 -> no; x1!=x0 -> yes; x2==x1 -> no.
        assert_eq!(privileges(&[1, 0, 0], 3), 1);
        // [0,1,0]: bottom yes (0==0); x1!=x0 yes; x2!=x1 yes -> 3.
        assert_eq!(privileges(&[0, 1, 0], 3), 3);
    }

    #[test]
    fn some_state_is_always_privileged() {
        // Classic lemma: at least one machine is privileged in every state.
        let ring = ring(3, 2).unwrap();
        let total = ring.fair().union().num_states();
        for state in 0..total {
            // Reconstruct values from the spec builder's encoding: the
            // compiled program used var order x0..x2 with domain k each.
            let mut s = state;
            let mut values = Vec::new();
            for _ in 0..3 {
                values.push(s % 2);
                s /= 2;
            }
            assert!(privileges(&values, 2) >= 1, "state {state} unprivileged");
        }
    }

    #[test]
    fn ring_with_k_equal_n_stabilizes() {
        let ring = ring(3, 3).unwrap();
        let report = ring.stabilizes();
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn ring_with_k_above_n_stabilizes() {
        let ring = ring(3, 4).unwrap();
        assert!(ring.stabilizes().holds());
    }

    #[test]
    fn two_process_ring_stabilizes() {
        let ring = ring(2, 2).unwrap();
        assert!(ring.stabilizes().holds());
    }

    #[test]
    fn four_process_ring_with_k_four_stabilizes() {
        let ring = ring(4, 4).unwrap();
        assert!(ring.stabilizes().holds());
    }

    #[test]
    fn legitimate_states_are_closed_under_protocol() {
        let ring = ring(3, 3).unwrap();
        let legit = ring.spec().init();
        for state in legit {
            for next in ring.fair().union().successors(state) {
                if next != state {
                    assert!(
                        legit.contains(next),
                        "legit state {state} stepped to illegitimate {next}"
                    );
                }
            }
        }
    }

    #[test]
    fn accessors_report_parameters() {
        let ring = ring(3, 3).unwrap();
        assert_eq!(ring.n(), 3);
        assert_eq!(ring.k(), 3);
        assert_eq!(ring.spec().num_states(), 27);
    }
}
