//! # Graybox stabilization: the formal framework, executable
//!
//! This crate implements §2 of *"Graybox Stabilization"* (Arora, Demirbas,
//! Kulkarni; DSN 2001) as an explicit-state model-checking library.
//!
//! ## Fusion closure makes the theory decidable
//!
//! The paper defines a *system* as a set of (possibly infinite) state
//! sequences over a state space Σ, with at least one computation starting
//! from every state, and assumes computations are **fusion closed**. Over a
//! finite Σ, a fusion-closed computation set is exactly the set of paths of
//! a directed graph whose every state has at least one successor. So a
//! system *is* a pair `(init ⊆ Σ, E ⊆ Σ×Σ)` — the [`FiniteSystem`] type —
//! and the paper's relations become graph algorithms:
//!
//! | paper | here | algorithm |
//! |---|---|---|
//! | `[C ⇒ A]_init` | [`implements_from_init`] | init inclusion + reachable edge inclusion |
//! | `[C ⇒ A]` | [`everywhere_implements`] | edge inclusion |
//! | `C ⊓ W` (box) | [`box_compose`] | edge union, init intersection |
//! | `C` stabilizing to `A` | [`is_stabilizing_to`] | no cycle of `C` crosses an edge outside `A`'s init-reachable subgraph |
//!
//! [`figure1`] reconstructs the paper's counterexample; [`theorems`] checks
//! Lemma 0 / Theorems 1 and 4 on concrete instances; [`gcl`] provides the
//! guarded-command language the paper uses for implementations; [`unity`]
//! provides `unless` / `stable` / `invariant` / `leads-to` over finite
//! systems; [`dijkstra`] exercises the framework on the classic K-state
//! token ring.
//!
//! ## Example: the Figure 1 counterexample
//!
//! ```
//! use graybox_core::{everywhere_implements, figure1, implements_from_init, is_stabilizing_to};
//!
//! let (a, c) = figure1::systems();
//! assert!(implements_from_init(&c, &a));       // [C ⇒ A]_init holds …
//! assert!(is_stabilizing_to(&a, &a).holds());  // … and A is stabilizing to A …
//! assert!(!is_stabilizing_to(&c, &a).holds()); // … yet C is NOT stabilizing to A.
//! assert!(!everywhere_implements(&c, &a));     // because C is not an everywhere implementation.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod bruteforce;
mod compose;
pub mod dijkstra;
pub mod fairness;
pub mod figure1;
pub mod gcl;
pub mod method;
mod par;
pub mod randsys;
pub mod reference;
mod relations;
pub mod sweep;
pub mod synthesis;
mod system;
pub mod theorems;
pub mod tme_abstract;
pub mod tolerance;
pub mod unity;

pub use bitset::StateSet;
pub use compose::box_compose;
pub use relations::{
    everywhere_implements, implements_from_init, is_stabilizing_to, StabilizationReport,
};
pub use system::{Edges, FiniteSystem, SystemBuilder, SystemError};
