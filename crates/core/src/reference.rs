//! The pre-CSR `BTreeSet` transition engine, retained as an executable
//! reference.
//!
//! [`ReferenceSystem`] is the representation [`FiniteSystem`] used before
//! the CSR/bitset rework: initial states in a `BTreeSet<usize>`, edges in
//! a `BTreeSet<(usize, usize)>`, successor queries by range scan, and
//! stabilization decided by the original per-divergent-edge BFS. It exists
//! for two purposes:
//!
//! * **cross-validation** — the property tests in this module run both
//!   engines on thousands of seeded random instances and assert they
//!   agree on every query;
//! * **benchmarking** — `graybox-bench` times the reference engine as the
//!   baseline the CSR engine is compared against (`BENCH_core.json`).
//!
//! Nothing outside tests and benches should depend on this module.

use std::collections::BTreeSet;

use crate::FiniteSystem;

/// A finite system in the original `BTreeSet` representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceSystem {
    num_states: usize,
    init: BTreeSet<usize>,
    edges: BTreeSet<(usize, usize)>,
}

impl ReferenceSystem {
    /// Builds a reference system from raw parts. The caller is responsible
    /// for validity (in-range, total) — use [`FiniteSystem::builder`] and
    /// [`ReferenceSystem::from_system`] when validation matters.
    pub fn from_parts(
        num_states: usize,
        init: impl IntoIterator<Item = usize>,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Self {
        ReferenceSystem {
            num_states,
            init: init.into_iter().collect(),
            edges: edges.into_iter().collect(),
        }
    }

    /// Converts a CSR-engine system into the reference representation.
    pub fn from_system(sys: &FiniteSystem) -> Self {
        ReferenceSystem::from_parts(sys.num_states(), sys.init().iter(), sys.edges())
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial states.
    pub fn init(&self) -> &BTreeSet<usize> {
        &self.init
    }

    /// The edge set.
    pub fn edges(&self) -> &BTreeSet<(usize, usize)> {
        &self.edges
    }

    /// Membership by ordered-set lookup.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.edges.contains(&(from, to))
    }

    /// Successors by range scan over the ordered edge set.
    pub fn successors(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .range((state, 0)..=(state, usize::MAX))
            .map(|&(_, to)| to)
    }

    /// BFS closure of a seed set (seeds included).
    pub fn reachable_from(&self, seeds: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = seeds.into_iter().collect();
        let mut frontier: Vec<usize> = seen.iter().copied().collect();
        while let Some(state) = frontier.pop() {
            for next in self.successors(state) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }

    /// Closure of the initial states, recomputed on every call (the
    /// original engine had no cache).
    pub fn reachable_from_init(&self) -> BTreeSet<usize> {
        self.reachable_from(self.init.iter().copied())
    }

    /// Path (length ≥ 1) existence by BFS.
    pub fn has_path(&self, from: usize, to: usize) -> bool {
        let mut seen = BTreeSet::new();
        let mut frontier = vec![from];
        while let Some(state) = frontier.pop() {
            for next in self.successors(state) {
                if next == to {
                    return true;
                }
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        false
    }

    /// The original stabilization decision: for each divergent edge of
    /// `self` (an edge that is not an `a`-transition between legitimate
    /// states), run a BFS to ask whether it lies on a cycle —
    /// `O(E · (V + E))` worst case. Returns the first recurring divergent
    /// edge in lexicographic order, `None` when stabilizing; exactly the
    /// contract of [`crate::is_stabilizing_to`].
    pub fn is_stabilizing_to(&self, a: &ReferenceSystem) -> Option<(usize, usize)> {
        let legitimate = a.reachable_from_init();
        if self.num_states != a.num_states {
            return self.edges.iter().next().copied();
        }
        let divergent = |from: usize, to: usize| {
            !(a.has_edge(from, to) && legitimate.contains(&from) && legitimate.contains(&to))
        };
        for &(from, to) in &self.edges {
            if divergent(from, to) && (from == to || self.has_path(to, from)) {
                return Some((from, to));
            }
        }
        None
    }

    /// Box composition by rebuilding the ordered sets: edge union, init
    /// intersection.
    pub fn box_compose(&self, other: &ReferenceSystem) -> ReferenceSystem {
        assert_eq!(self.num_states, other.num_states);
        ReferenceSystem {
            num_states: self.num_states,
            init: self.init.intersection(&other.init).copied().collect(),
            edges: self.edges.union(&other.edges).copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randsys::{random_subsystem, random_system};
    use crate::{box_compose, is_stabilizing_to};
    use graybox_rng::rngs::SmallRng;
    use graybox_rng::SeedableRng;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    /// Asserts that every query of the two engines agrees on `sys`.
    fn assert_engines_agree(sys: &FiniteSystem) {
        let r = ReferenceSystem::from_system(sys);
        let n = sys.num_states();
        assert_eq!(*sys.init(), *r.init());
        assert_eq!(
            sys.edges().iter().collect::<Vec<_>>(),
            r.edges().iter().copied().collect::<Vec<_>>(),
        );
        assert_eq!(*sys.reachable_from_init(), r.reachable_from_init());
        for from in 0..n {
            assert_eq!(
                sys.successors(from).collect::<Vec<_>>(),
                r.successors(from).collect::<Vec<_>>(),
                "successors of {from}",
            );
            assert_eq!(
                sys.predecessors(from).count(),
                r.edges().iter().filter(|&&(_, to)| to == from).count(),
                "predecessor count of {from}",
            );
            for to in 0..n {
                assert_eq!(sys.has_edge(from, to), r.has_edge(from, to));
                assert_eq!(
                    sys.has_path(from, to),
                    r.has_path(from, to),
                    "has_path({from}, {to})",
                );
            }
        }
    }

    fn assert_decisions_agree(c: &FiniteSystem, a: &FiniteSystem, tag: &str) {
        let rc = ReferenceSystem::from_system(c);
        let ra = ReferenceSystem::from_system(a);
        let fast = is_stabilizing_to(c, a);
        let slow = rc.is_stabilizing_to(&ra);
        assert_eq!(
            fast.divergent_edge, slow,
            "{tag}: CSR reported {:?}, reference reported {slow:?}",
            fast.divergent_edge,
        );
        assert_eq!(fast.legitimate_states, ra.reachable_from_init(), "{tag}");
    }

    #[test]
    fn engines_agree_on_2000_random_instances() {
        // Same seed schedule as the bruteforce cross-validation test, so
        // three independent deciders cover the same instance family.
        let mut positive = 0;
        let mut negative = 0;
        for seed in 0..2_000u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = random_system(&mut rng, 6, 2, 0.4);
            let c = if seed % 2 == 0 {
                random_system(&mut rng, 6, 2, 0.4)
            } else {
                random_subsystem(&mut rng, &a)
            };
            assert_engines_agree(&a);
            assert_engines_agree(&c);
            assert_decisions_agree(&c, &a, &format!("seed {seed}"));

            // Composition: same resulting system under both engines.
            let ra = ReferenceSystem::from_system(&a);
            let rc = ReferenceSystem::from_system(&c);
            let composed = box_compose(&c, &a).unwrap();
            assert_eq!(ReferenceSystem::from_system(&composed), rc.box_compose(&ra));

            if is_stabilizing_to(&c, &a).holds() {
                positive += 1;
            } else {
                negative += 1;
            }
        }
        // Both outcomes must actually occur, or the test proves nothing.
        assert!(positive > 50, "only {positive} positive cases");
        assert!(negative > 50, "only {negative} negative cases");
    }

    #[test]
    fn engines_agree_on_all_self_loop_systems() {
        for n in 1..=5 {
            let loops = sys(n, &[0], &(0..n).map(|s| (s, s)).collect::<Vec<_>>());
            assert_engines_agree(&loops);
            assert_decisions_agree(&loops, &loops, &format!("self-loops n={n}"));
        }
    }

    #[test]
    fn engines_agree_on_single_state_system() {
        let one = sys(1, &[0], &[(0, 0)]);
        assert_engines_agree(&one);
        assert_decisions_agree(&one, &one, "single state");
        assert!(is_stabilizing_to(&one, &one).holds());
    }

    #[test]
    fn engines_agree_with_init_disconnected_from_a_component() {
        // Two components; init only reaches {0, 1}. The {2, 3} cycle is
        // divergent for spec `a` (legitimate = {0, 1}).
        let a = sys(4, &[0], &[(0, 1), (1, 0), (2, 2), (3, 3)]);
        let c = sys(4, &[0], &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert_engines_agree(&a);
        assert_engines_agree(&c);
        assert_decisions_agree(&c, &a, "disconnected init");
        assert!(!is_stabilizing_to(&c, &a).holds());
    }

    #[test]
    fn engines_agree_with_empty_init() {
        // No initial state at all: legitimate set is empty, so every edge
        // of a cyclic implementation is divergent.
        let a = sys(2, &[], &[(0, 1), (1, 0)]);
        let c = sys(2, &[], &[(0, 1), (1, 0)]);
        assert_engines_agree(&a);
        assert_decisions_agree(&c, &a, "empty init");
        assert!(!is_stabilizing_to(&c, &a).holds());
    }

    #[test]
    fn reference_reports_the_same_edge_on_figure1() {
        let (a, c) = crate::figure1::systems();
        assert_decisions_agree(&c, &a, "figure 1");
    }
}
