//! Shared parallel graph kernels: level-synchronized BFS and FB-Trim
//! strongly-connected-component decomposition.
//!
//! Both kernels work over any CSR-shaped graph through the [`ParGraph`]
//! trait — [`FiniteSystem`]'s `usize` rows and the GCL streaming
//! pipeline's 32-bit union rows — and both are std-only (`thread::scope`
//! via [`crate::sweep::join_all`], no rayon, no unsafe).
//!
//! # Level-synchronized BFS ([`reach`])
//!
//! The frontier of each BFS level is split into contiguous chunks, one
//! per worker. Workers read the shared `seen` bitset **immutably** and
//! emit candidate successors into private buffers; at the level barrier
//! the calling thread merges the buffers into `seen` serially (insert
//! deduplicates across workers), so no atomics touch the bitset and the
//! resulting closure is exactly the serial one. Levels smaller than a
//! threshold expand inline — tiny levels are not worth a fan-out.
//!
//! # FB-Trim SCC ([`fb_trim`])
//!
//! The classic forward-backward decomposition with a trim prepass:
//!
//! 1. **Trim** (serial, amortized `O(V + E)`): repeatedly peel states
//!    with no in- or out-edge to another live state — each is a singleton
//!    SCC. Self-loops are *excluded* from the degree counts: a state
//!    whose only cycle is its own self-loop is still a singleton
//!    component, and the GCL union graphs carry skip self-loops almost
//!    everywhere, so counting them would leave nothing to peel.
//! 2. **Root split** (parallel): pick a pivot among the survivors; its
//!    forward and backward reachable sets (two parallel [`reach`] calls
//!    filtered to the survivors) intersect in exactly the pivot's SCC,
//!    and every other SCC lies wholly inside `F∖B`, `B∖F`, or the
//!    remainder — three independent subproblems.
//! 3. **Task pool**: a shared work queue of SCC-closed member lists.
//!    Each worker either recurses on its task (pivot split via filtered
//!    closures over the *global* graph — no per-task compaction, so a
//!    split touches only the task's own edges) pushing up to three
//!    subtasks, or, below [`FB_SEQ_CUTOFF`] states or beyond
//!    [`FB_MAX_DEPTH`] splits, compacts to a local 32-bit CSR and
//!    finishes with the sequential Tarjan — correct on any SCC-closed
//!    subset, and the differential oracle for the whole decomposition.
//!    Idle workers block on a condvar rather than spinning, so an
//!    oversubscribed pool (more workers than cores) does not steal CPU
//!    from the workers that hold tasks.
//!
//! Labels come out in no particular order; [`canonical_reverse_topo`]
//! relabels them into a canonical reverse topological order (a pure
//! function of the graph, independent of engine and thread count) where
//! callers promise an order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::bitset::StateSet;
use crate::gcl::tarjan_u32;
use crate::sweep::{chunk_ranges, join_all};
use crate::FiniteSystem;

/// Parallel engines engage only at or above this many states; below it
/// the serial algorithms win on constant factors, and the serial
/// fallback doubles as the ≤1-core path.
pub(crate) const PAR_MIN_STATES: usize = 1 << 17;

/// A BFS level is expanded in parallel only when its frontier has at
/// least this many states; smaller levels run inline on the caller.
const PAR_FRONTIER_MIN: usize = 1 << 13;

/// FB tasks at or below this many states are finished by the sequential
/// Tarjan instead of recursing further.
const FB_SEQ_CUTOFF: usize = 1 << 11;

/// Bound on FB recursion depth; beyond it tasks finish with Tarjan
/// regardless of size, so adversarial chain graphs cannot degenerate
/// into quadratically many pivot splits.
const FB_MAX_DEPTH: u32 = 64;

/// A CSR-shaped directed graph the parallel kernels can traverse.
///
/// `pred_each` may be left unsupported (panicking) by views that are
/// only ever used forward — [`reach`] with `backward = false` never
/// calls it.
pub(crate) trait ParGraph: Sync {
    /// Number of states (vertices) in the graph.
    fn num_states(&self) -> usize;
    /// Calls `f` once per successor of `v` (ascending, duplicates-free).
    fn succ_each(&self, v: usize, f: impl FnMut(usize));
    /// Calls `f` once per predecessor of `v`.
    fn pred_each(&self, v: usize, f: impl FnMut(usize));
}

/// [`ParGraph`] view of a [`FiniteSystem`]'s CSR rows.
///
/// `pred_each` goes through the lazily built reverse CSR; callers that
/// traverse backward in parallel should touch `predecessors_slice`
/// once first so workers do not all block on the same `OnceLock`
/// initialization.
pub(crate) struct SysGraph<'a>(pub &'a FiniteSystem);

impl ParGraph for SysGraph<'_> {
    fn num_states(&self) -> usize {
        self.0.num_states()
    }

    #[inline]
    fn succ_each(&self, v: usize, mut f: impl FnMut(usize)) {
        for &t in self.0.successors_slice(v) {
            f(t);
        }
    }

    #[inline]
    fn pred_each(&self, v: usize, mut f: impl FnMut(usize)) {
        for &t in self.0.predecessors_slice(v) {
            f(t);
        }
    }
}

/// [`ParGraph`] view over 32-bit CSR arrays (the GCL streaming
/// pipeline's union graph), with optional reverse rows.
pub(crate) struct U32Graph<'a> {
    off: &'a [u32],
    to: &'a [u32],
    rev: Option<(&'a [u32], &'a [u32])>,
}

impl<'a> U32Graph<'a> {
    /// Forward-only view; `pred_each` panics.
    pub(crate) fn forward(off: &'a [u32], to: &'a [u32]) -> Self {
        U32Graph { off, to, rev: None }
    }

    /// View with reverse rows (e.g. from [`reverse_u32`]).
    pub(crate) fn with_reverse(
        off: &'a [u32],
        to: &'a [u32],
        roff: &'a [u32],
        rto: &'a [u32],
    ) -> Self {
        U32Graph {
            off,
            to,
            rev: Some((roff, rto)),
        }
    }
}

impl ParGraph for U32Graph<'_> {
    fn num_states(&self) -> usize {
        self.off.len() - 1
    }

    #[inline]
    fn succ_each(&self, v: usize, mut f: impl FnMut(usize)) {
        for &t in &self.to[self.off[v] as usize..self.off[v + 1] as usize] {
            f(t as usize);
        }
    }

    #[inline]
    fn pred_each(&self, v: usize, mut f: impl FnMut(usize)) {
        let (roff, rto) = self
            .rev
            .expect("backward traversal over a forward-only U32Graph");
        for &t in &rto[roff[v] as usize..roff[v + 1] as usize] {
            f(t as usize);
        }
    }
}

/// Reverse of a 32-bit CSR by counting sort on the target column;
/// scanning sources in order keeps each reverse row sorted.
// `v as u32` is in range: `n` is a 32-bit state count by the callers'
// upfront guards.
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn reverse_u32(n: usize, off: &[u32], to: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut roff = vec![0u32; n + 1];
    for &t in to {
        roff[t as usize + 1] += 1;
    }
    for i in 0..n {
        roff[i + 1] += roff[i];
    }
    let mut cursor = roff.clone();
    let mut rto = vec![0u32; to.len()];
    for v in 0..n {
        for &t in &to[off[v] as usize..off[v + 1] as usize] {
            rto[cursor[t as usize] as usize] = v as u32;
            cursor[t as usize] += 1;
        }
    }
    (roff, rto)
}

/// States reachable from `seeds` (seeds included) following forward or
/// reverse edges, optionally restricted to a filter set. Identical to
/// the serial closure for every worker count; `workers <= 1` runs fully
/// inline.
pub(crate) fn reach<G: ParGraph>(
    g: &G,
    workers: usize,
    seeds: impl IntoIterator<Item = usize>,
    filter: Option<&StateSet>,
    backward: bool,
) -> StateSet {
    reach_impl(g, workers, seeds, filter, backward, PAR_FRONTIER_MIN)
}

fn reach_impl<G: ParGraph>(
    g: &G,
    workers: usize,
    seeds: impl IntoIterator<Item = usize>,
    filter: Option<&StateSet>,
    backward: bool,
    frontier_min: usize,
) -> StateSet {
    let pass = |s: usize| filter.is_none_or(|f| f.contains(s));
    let mut seen = StateSet::with_capacity(g.num_states());
    let mut frontier: Vec<usize> = Vec::new();
    for seed in seeds {
        if pass(seed) && seen.insert(seed) {
            frontier.push(seed);
        }
    }
    let mut next: Vec<usize> = Vec::new();
    while !frontier.is_empty() {
        if workers <= 1 || frontier.len() < frontier_min {
            // Inline expansion of a small level.
            for &state in &frontier {
                let visit = |t: usize| {
                    if pass(t) && seen.insert(t) {
                        next.push(t);
                    }
                };
                if backward {
                    g.pred_each(state, visit);
                } else {
                    g.succ_each(state, visit);
                }
            }
        } else {
            // Fan the level out: workers read `seen` immutably and emit
            // candidates; the barrier merge below is the only writer, so
            // the bitset needs no atomics. Candidates may repeat across
            // workers — `insert` deduplicates.
            let seen_ref = &seen;
            let tasks: Vec<_> = chunk_ranges(frontier.len(), workers, 1)
                .into_iter()
                .map(|range| {
                    let chunk = &frontier[range];
                    move || {
                        let mut found: Vec<usize> = Vec::new();
                        for &state in chunk {
                            let visit = |t: usize| {
                                if pass(t) && !seen_ref.contains(t) {
                                    found.push(t);
                                }
                            };
                            if backward {
                                g.pred_each(state, visit);
                            } else {
                                g.succ_each(state, visit);
                            }
                        }
                        found
                    }
                })
                .collect();
            for found in join_all(tasks) {
                for t in found {
                    if seen.insert(t) {
                        next.push(t);
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    seen
}

/// One FB task: an SCC-closed subset of the state space, members
/// ascending (splits preserve the order they inherit).
struct Task {
    members: Vec<u32>,
    depth: u32,
}

/// FB-Trim SCC decomposition. Returns `(scc id per state, scc count)`
/// with labels in **no particular order** — use
/// [`canonical_reverse_topo`] where an order is promised. The partition
/// itself is exact for any worker count; the sequential Tarjan remains
/// the oracle in the differential suites.
///
/// Callers guarantee the state count (and transitively every id) fits
/// `u32`.
pub(crate) fn fb_trim<G: ParGraph>(g: &G, workers: usize) -> (Vec<u32>, usize) {
    fb_trim_impl(g, workers, FB_SEQ_CUTOFF)
}

// Ids and degrees fit `u32` by the caller's state-count guard.
#[allow(clippy::cast_possible_truncation)]
fn fb_trim_impl<G: ParGraph>(g: &G, workers: usize, seq_cutoff: usize) -> (Vec<u32>, usize) {
    let n = g.num_states();
    debug_assert!(u32::try_from(n).is_ok());
    let mut ids = vec![u32::MAX; n];
    let mut next_id = 0u32;

    // Trim: peel states with no in- or out-edge to another live state;
    // each is a singleton SCC. Self-loops are excluded from the degree
    // counts (they never make a component non-singleton).
    let mut in_deg = vec![0u32; n];
    let mut out_deg = vec![0u32; n];
    for (v, out) in out_deg.iter_mut().enumerate() {
        let mut d = 0u32;
        g.succ_each(v, |t| {
            if t != v {
                d += 1;
                in_deg[t] += 1;
            }
        });
        *out = d;
    }
    let mut peel: Vec<usize> = (0..n)
        .filter(|&v| in_deg[v] == 0 || out_deg[v] == 0)
        .collect();
    while let Some(v) = peel.pop() {
        if ids[v] != u32::MAX {
            continue; // pushed twice (both degrees hit zero)
        }
        ids[v] = next_id;
        next_id += 1;
        g.succ_each(v, |t| {
            if t != v && ids[t] == u32::MAX {
                in_deg[t] -= 1;
                if in_deg[t] == 0 {
                    peel.push(t);
                }
            }
        });
        g.pred_each(v, |u| {
            if u != v && ids[u] == u32::MAX {
                out_deg[u] -= 1;
                if out_deg[u] == 0 {
                    peel.push(u);
                }
            }
        });
    }

    let alive: Vec<u32> = (0..n)
        .filter(|&v| ids[v] == u32::MAX)
        .map(|v| v as u32)
        .collect();
    if alive.is_empty() {
        return (ids, next_id as usize);
    }

    // Root split: the survivors' biggest SCCs are found here with the
    // parallel BFS; everything else becomes pool tasks.
    let alive_set: StateSet = alive.iter().map(|&v| v as usize).collect();
    let pivot = alive[0] as usize;
    let fwd = reach(g, workers, [pivot], Some(&alive_set), false);
    let bwd = reach(g, workers, [pivot], Some(&alive_set), true);
    let mut f_rest: Vec<u32> = Vec::new();
    let mut b_rest: Vec<u32> = Vec::new();
    let mut rest: Vec<u32> = Vec::new();
    for &v in &alive {
        let vu = v as usize;
        match (fwd.contains(vu), bwd.contains(vu)) {
            (true, true) => ids[vu] = next_id,
            (true, false) => f_rest.push(v),
            (false, true) => b_rest.push(v),
            (false, false) => rest.push(v),
        }
    }
    next_id += 1;

    // Task pool: a mutex'd queue plus an in-flight counter and a
    // condvar. A worker observing an empty queue may only exit when
    // nothing is in flight — an in-flight task may still push subtasks —
    // and otherwise *blocks* on the condvar (woken by subtask pushes and
    // by the last decrement of the in-flight count) instead of spinning.
    // Workers accumulate finished component groups privately; ids are
    // assigned serially afterwards.
    let tasks: Vec<Task> = [f_rest, b_rest, rest]
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|members| Task { members, depth: 1 })
        .collect();
    let queue = Mutex::new(tasks);
    let idle = Condvar::new();
    let active = AtomicUsize::new(0);
    let workers_pool: Vec<_> = (0..workers.max(1))
        .map(|_| {
            let (queue, idle, active) = (&queue, &idle, &active);
            move || {
                let mut groups: Vec<Vec<u32>> = Vec::new();
                loop {
                    let task = {
                        let mut q = queue.lock().expect("scc task queue poisoned");
                        loop {
                            if let Some(task) = q.pop() {
                                // Inside the lock, so emptiness and the
                                // in-flight count can never both read
                                // stale.
                                active.fetch_add(1, Ordering::SeqCst);
                                break Some(task);
                            }
                            if active.load(Ordering::SeqCst) == 0 {
                                break None;
                            }
                            q = idle.wait(q).expect("scc task queue poisoned");
                        }
                    };
                    match task {
                        Some(task) => {
                            process_task(g, task, seq_cutoff, queue, idle, &mut groups);
                            if active.fetch_sub(1, Ordering::SeqCst) == 1 {
                                // Possibly the last task: wake everyone so
                                // blocked workers can re-check and exit.
                                idle.notify_all();
                            }
                        }
                        None => break,
                    }
                }
                groups
            }
        })
        .collect();
    for groups in join_all(workers_pool) {
        for group in groups {
            debug_assert!(!group.is_empty());
            for &v in &group {
                ids[v as usize] = next_id;
            }
            next_id += 1;
        }
    }
    debug_assert!(ids.iter().all(|&id| id != u32::MAX));
    (ids, next_id as usize)
}

/// Processes one SCC-closed task: either finish small/deep tasks with
/// Tarjan on a compacted local CSR, or split around a pivot — closures
/// run on the **global** graph filtered to the task's member set, so a
/// split costs the task's own edges, never a whole-graph compaction.
// Local indices are bounded by the task size, itself bounded by the
// 32-bit state count.
#[allow(clippy::cast_possible_truncation)]
fn process_task<G: ParGraph>(
    g: &G,
    task: Task,
    seq_cutoff: usize,
    queue: &Mutex<Vec<Task>>,
    idle: &Condvar,
    groups: &mut Vec<Vec<u32>>,
) {
    let Task { members, depth } = task;
    let m = members.len();

    if m <= seq_cutoff || depth >= FB_MAX_DEPTH {
        // Tarjan on a compacted subgraph: exact because the task is
        // SCC-closed, so no component straddles the task boundary. Only
        // these leaves pay the binary-search compaction, and they are
        // small by construction (or terminal by the depth cap).
        let mut off = vec![0u32; m + 1];
        let mut to: Vec<u32> = Vec::new();
        for (i, &v) in members.iter().enumerate() {
            g.succ_each(v as usize, |t| {
                if let Ok(j) = members.binary_search(&(t as u32)) {
                    to.push(j as u32);
                }
            });
            off[i + 1] = to.len() as u32;
        }
        let (local_ids, count) = tarjan_u32(m, &off, &to);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); count];
        for (i, &c) in local_ids.iter().enumerate() {
            buckets[c as usize].push(members[i]);
        }
        groups.extend(buckets);
        return;
    }

    // Pivot split on the first (smallest) member, via closures over the
    // global graph restricted to this task.
    let member_set: StateSet = members.iter().map(|&v| v as usize).collect();
    let pivot = members[0] as usize;
    let fwd = reach(g, 1, [pivot], Some(&member_set), false);
    let bwd = reach(g, 1, [pivot], Some(&member_set), true);
    let mut scc: Vec<u32> = Vec::new();
    let mut f_rest: Vec<u32> = Vec::new();
    let mut b_rest: Vec<u32> = Vec::new();
    let mut rest: Vec<u32> = Vec::new();
    for &v in &members {
        let vu = v as usize;
        match (fwd.contains(vu), bwd.contains(vu)) {
            (true, true) => scc.push(v),
            (true, false) => f_rest.push(v),
            (false, true) => b_rest.push(v),
            (false, false) => rest.push(v),
        }
    }
    groups.push(scc);
    let mut q = queue.lock().expect("scc task queue poisoned");
    for part in [f_rest, b_rest, rest] {
        if !part.is_empty() {
            q.push(Task {
                members: part,
                depth: depth + 1,
            });
        }
    }
    drop(q);
    // New work is available (and if all three parts were empty, the
    // caller's in-flight decrement does its own wake-up).
    idle.notify_all();
}

/// Rewrites an arbitrary SCC labeling into the canonical reverse
/// topological order: condensation sinks first, then each successive
/// Kahn level, components within a level ordered by their smallest
/// member state. The result is a pure function of the graph —
/// independent of which engine produced the input labels and of the
/// worker count.
///
/// Requires `pred_each`; runs in `O(V + E + count log count)`.
// Component indices and member ids fit `u32` by the caller's guards.
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn canonical_reverse_topo<G: ParGraph>(g: &G, ids: &mut [u32], count: usize) {
    let n = g.num_states();
    // Member lists by counting sort; members ascend per component, so
    // `comp_members[comp_off[c]]` is component c's smallest state.
    let mut comp_off = vec![0u32; count + 1];
    for &c in ids.iter() {
        comp_off[c as usize + 1] += 1;
    }
    for i in 0..count {
        comp_off[i + 1] += comp_off[i];
    }
    let mut cursor = comp_off.clone();
    let mut comp_members = vec![0u32; n];
    for (v, &c) in ids.iter().enumerate() {
        comp_members[cursor[c as usize] as usize] = v as u32;
        cursor[c as usize] += 1;
    }

    // Cross-edge out-degrees in the condensation multigraph (duplicates
    // counted; each cross edge is decremented exactly once below).
    let mut out = vec![0u64; count];
    for v in 0..n {
        let c = ids[v];
        g.succ_each(v, |t| {
            if ids[t] != c {
                out[c as usize] += 1;
            }
        });
    }

    let mut label = vec![u32::MAX; count];
    let mut next_label = 0u32;
    let mut level: Vec<u32> = (0..count as u32)
        .filter(|&c| out[c as usize] == 0)
        .collect();
    while !level.is_empty() {
        level.sort_unstable_by_key(|&c| comp_members[comp_off[c as usize] as usize]);
        for &c in &level {
            label[c as usize] = next_label;
            next_label += 1;
        }
        let mut next_level: Vec<u32> = Vec::new();
        for &c in &level {
            let members =
                &comp_members[comp_off[c as usize] as usize..comp_off[c as usize + 1] as usize];
            for &v in members {
                g.pred_each(v as usize, |u| {
                    let cu = ids[u];
                    if cu != c {
                        out[cu as usize] -= 1;
                        if out[cu as usize] == 0 {
                            next_level.push(cu);
                        }
                    }
                });
            }
        }
        level = next_level;
    }
    debug_assert_eq!(next_label as usize, count);
    for c in ids.iter_mut() {
        *c = label[*c as usize];
    }
}

#[cfg(test)]
// Test graphs are a few hundred states; every cast is trivially in range.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::FiniteSystem;

    /// Deterministic xorshift64*; no external RNG dependency and no
    /// wall-clock seeding, so every run sees the same graphs.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next() % bound as u64) as usize
        }
    }

    fn random_system(seed: u64, n: usize, edges: usize) -> FiniteSystem {
        let mut rng = XorShift(seed | 1);
        let mut builder = FiniteSystem::builder(n).initial(0);
        for _ in 0..edges {
            builder = builder.edge(rng.below(n), rng.below(n));
        }
        builder.stutter_quiescent().build().unwrap()
    }

    /// Asserts two labelings induce the same partition (bijective label
    /// correspondence in both directions).
    fn assert_same_partition(a: &[u32], b: &[usize]) {
        assert_eq!(a.len(), b.len());
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            assert_eq!(*fwd.entry(x).or_insert(y), y, "label {x} split");
            assert_eq!(*bwd.entry(y).or_insert(x), x, "label {y} merged");
        }
    }

    #[test]
    fn fb_trim_matches_tarjan_on_random_graphs() {
        for seed in 0..40u64 {
            let n = 20 + (seed as usize % 7) * 37;
            let sys = random_system(seed, n, n * 2);
            sys.predecessors_slice(0); // pre-build reverse rows
            let g = SysGraph(&sys);
            for workers in [1, 2, 4] {
                // Tiny cutoff forces the pivot-split recursion even on
                // these small graphs.
                let (ids, count) = fb_trim_impl(&g, workers, 4);
                assert_eq!(count, sys.scc_count(), "seed {seed}");
                assert_same_partition(&ids, sys.scc_ids());
            }
        }
    }

    #[test]
    fn canonical_relabel_is_reverse_topological_and_engine_independent() {
        let sys = FiniteSystem::builder(5)
            .initial(0)
            .edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (4, 4)])
            .build()
            .unwrap();
        sys.predecessors_slice(0);
        let g = SysGraph(&sys);
        let (mut ids, count) = fb_trim(&g, 2);
        canonical_reverse_topo(&g, &mut ids, count);
        // Sinks first ({2,3} then {4}, by smallest member), sources last.
        assert_eq!(ids, vec![2, 2, 0, 0, 1]);

        // Any input labeling of the same partition canonicalizes to the
        // same output.
        let mut tarjan_ids: Vec<u32> = sys.scc_ids().iter().map(|&c| c as u32).collect();
        canonical_reverse_topo(&g, &mut tarjan_ids, sys.scc_count());
        assert_eq!(tarjan_ids, ids);
    }

    #[test]
    fn canonical_relabel_agrees_across_engines_on_random_graphs() {
        for seed in 100..120u64 {
            let sys = random_system(seed, 150, 260);
            sys.predecessors_slice(0);
            let g = SysGraph(&sys);
            let (mut par_ids, par_count) = fb_trim_impl(&g, 4, 8);
            canonical_reverse_topo(&g, &mut par_ids, par_count);
            let mut ser_ids: Vec<u32> = sys.scc_ids().iter().map(|&c| c as u32).collect();
            canonical_reverse_topo(&g, &mut ser_ids, sys.scc_count());
            assert_eq!(par_ids, ser_ids, "seed {seed}");
        }
    }

    #[test]
    fn parallel_reach_matches_serial_closure() {
        for seed in 0..20u64 {
            let sys = random_system(seed.wrapping_mul(977), 200, 350);
            sys.predecessors_slice(0);
            let g = SysGraph(&sys);
            let seeds = [0usize, 7, 13];
            let serial = sys.reachable_from(seeds);
            // frontier_min = 1 forces the fan-out path on every level.
            let par = reach_impl(&g, 4, seeds, None, false, 1);
            assert_eq!(par, serial, "seed {seed}");
            // Backward reach from s = all states that can reach s.
            let back = reach_impl(&g, 4, [5usize], None, true, 1);
            for v in 0..200 {
                let expected = sys.reachable_from([v]).contains(5);
                assert_eq!(back.contains(v), expected, "seed {seed}, state {v}");
            }
        }
    }

    #[test]
    fn filtered_reach_stays_inside_the_filter() {
        let sys = FiniteSystem::builder(6)
            .initial(0)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 5)])
            .build()
            .unwrap();
        let g = SysGraph(&sys);
        let filter: StateSet = [0, 1, 2, 4, 5].into_iter().collect();
        // 3 is outside the filter, so the walk stops there.
        let r = reach_impl(&g, 2, [0usize], Some(&filter), false, 1);
        assert_eq!(r, [0, 1, 2].into_iter().collect::<StateSet>());
    }

    #[test]
    fn trim_peels_self_loop_singletons() {
        // A pure self-loop graph must come out all singletons without
        // ever reaching the FB phase (trim sees zero non-self degrees).
        let sys = FiniteSystem::builder(4)
            .initial(0)
            .edges([(0, 0), (1, 1), (2, 2), (3, 3)])
            .build()
            .unwrap();
        sys.predecessors_slice(0);
        let g = SysGraph(&sys);
        let (ids, count) = fb_trim(&g, 2);
        assert_eq!(count, 4);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
