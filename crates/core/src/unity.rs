//! UNITY-style temporal predicates over finite systems.
//!
//! The paper expresses `TME_Spec` and `Lspec` in UNITY (Chandy & Misra):
//! `p unless q`, `stable p`, `q is invariant`, `p ↦ q` (leads-to) and
//! `p ⤳ q` (leads-to-always). This module evaluates those operators over a
//! [`FiniteSystem`] by quantifying over its computations, so finite-instance
//! specifications can be checked mechanically.
//!
//! Semantics notes:
//!
//! * `unless`/`stable`/`invariant` quantify over **all** transitions
//!   (everywhere semantics), matching the paper's use of these operators in
//!   everywhere specifications.
//! * `leads_to` quantifies over computations from the given start set
//!   (by default the initial states): from every reachable `p`-state, every
//!   computation eventually reaches a `q`-state. There is no fairness
//!   assumption — scheduling is demonic — so systems that rely on fairness
//!   must encode it in their transition structure.

use crate::{FiniteSystem, StateSet};

/// A state predicate over a finite system: the set of states satisfying it.
pub type Predicate<'a> = &'a dyn Fn(usize) -> bool;

fn states_where(sys: &FiniteSystem, p: Predicate<'_>) -> StateSet {
    (0..sys.num_states()).filter(|&s| p(s)).collect()
}

/// The UNITY `p unless q` over every transition of the system: if `p ∧ ¬q`
/// holds before a step, `p ∨ q` holds after it.
///
/// # Example
///
/// ```
/// use graybox_core::{unity, FiniteSystem};
///
/// let sys = FiniteSystem::builder(3).initial(0).edges([(0, 1), (1, 2), (2, 2)]).build()?;
/// // "state < 2" unless "state == 2": can only leave {0,1} by entering 2.
/// assert!(unity::unless(&sys, &|s| s < 2, &|s| s == 2));
/// # Ok::<(), graybox_core::SystemError>(())
/// ```
pub fn unless(sys: &FiniteSystem, p: Predicate<'_>, q: Predicate<'_>) -> bool {
    // `p(from) ∧ ¬q(from) ⇒ p(to) ∨ q(to)`, written in disjunctive form.
    sys.edges()
        .iter()
        .all(|(from, to)| !p(from) || q(from) || p(to) || q(to))
}

/// The UNITY `stable p` ≡ `p unless false`.
pub fn stable(sys: &FiniteSystem, p: Predicate<'_>) -> bool {
    unless(sys, p, &|_| false)
}

/// The UNITY `q is invariant`: `q` holds in the initial states and is
/// stable.
pub fn invariant(sys: &FiniteSystem, q: Predicate<'_>) -> bool {
    sys.init().iter().all(q) && stable(sys, q)
}

/// The UNITY `p ↦ q` (leads-to) over computations from the initial states:
/// whenever `p` holds at a reachable state, every computation from there
/// eventually reaches a state satisfying `q`.
///
/// Evaluated by checking that, in the subgraph of `¬q` states, no reachable
/// `p ∧ ¬q` state can reach a cycle of `¬q` states (which would let a
/// computation avoid `q` forever).
pub fn leads_to(sys: &FiniteSystem, p: Predicate<'_>, q: Predicate<'_>) -> bool {
    let reachable = sys.reachable_from_init();
    let starts: Vec<usize> = reachable.iter().filter(|&s| p(s) && !q(s)).collect();
    if starts.is_empty() {
        return true;
    }
    // States from which a computation can avoid q forever: states on a
    // ¬q-cycle, plus states that reach such a cycle through ¬q states.
    let avoiders = can_avoid_forever(sys, q);
    starts.iter().all(|&s| !avoiders.contains(s))
}

/// The paper's `p ⤳ q` ("leads to always"): `p ↦ q` and `stable q`.
pub fn leads_to_always(sys: &FiniteSystem, p: Predicate<'_>, q: Predicate<'_>) -> bool {
    leads_to(sys, p, q) && stable(sys, q)
}

/// States from which some computation avoids `q` forever.
fn can_avoid_forever(sys: &FiniteSystem, q: Predicate<'_>) -> StateSet {
    // A ¬q-state is an avoider iff it lies on a ¬q-cycle or reaches one via
    // ¬q edges. Compute states on ¬q-cycles by iteratively trimming
    // ¬q-states with no successor inside the live ¬q set, then flood
    // backwards.
    let mut live = states_where(sys, &|s| !q(s));
    loop {
        let dead: Vec<usize> = live
            .iter()
            .filter(|&s| !sys.successors_slice(s).iter().any(|t| live.contains(t)))
            .collect();
        if dead.is_empty() {
            break;
        }
        for s in dead {
            live.remove(s);
        }
    }
    // `live` now holds ¬q states with an infinite ¬q-path; that is exactly
    // the avoider set.
    live
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    #[test]
    fn unless_holds_on_guarded_exit() {
        let s = sys(3, &[0], &[(0, 1), (1, 2), (2, 2)]);
        assert!(unless(&s, &|x| x < 2, &|x| x == 2));
        assert!(unless(&s, &|x| x == 0, &|x| x == 1));
    }

    #[test]
    fn unless_fails_on_unguarded_exit() {
        let s = sys(3, &[0], &[(0, 2), (1, 1), (2, 2)]);
        // p = {0,1}, q = {1}: step 0 -> 2 leaves p without passing q.
        assert!(!unless(&s, &|x| x < 2, &|x| x == 1));
    }

    #[test]
    fn unless_vacuous_when_p_never_holds() {
        let s = sys(2, &[0], &[(0, 1), (1, 0)]);
        assert!(unless(&s, &|_| false, &|_| false));
    }

    #[test]
    fn stable_means_closed() {
        let s = sys(3, &[0], &[(0, 1), (1, 0), (2, 1)]);
        assert!(stable(&s, &|x| x < 2));
        assert!(!stable(&s, &|x| x == 2));
    }

    #[test]
    fn invariant_needs_init_and_closure() {
        let s = sys(3, &[0], &[(0, 1), (1, 0), (2, 2)]);
        assert!(invariant(&s, &|x| x < 2));
        // Holds initially but not closed:
        let s2 = sys(2, &[0], &[(0, 1), (1, 1)]);
        assert!(!invariant(&s2, &|x| x == 0));
        // Closed but not initial:
        assert!(!invariant(&s, &|x| x == 2));
    }

    #[test]
    fn leads_to_on_a_progressing_chain() {
        let s = sys(3, &[0], &[(0, 1), (1, 2), (2, 2)]);
        assert!(leads_to(&s, &|x| x == 0, &|x| x == 2));
        assert!(leads_to(&s, &|_| true, &|x| x == 2));
    }

    #[test]
    fn leads_to_fails_with_escape_loop() {
        // From 0 the computation may loop at 1 forever.
        let s = sys(3, &[0], &[(0, 1), (1, 1), (1, 2), (2, 2)]);
        assert!(!leads_to(&s, &|x| x == 0, &|x| x == 2));
    }

    #[test]
    fn leads_to_ignores_unreachable_p_states() {
        // State 2 is p but unreachable from init; its livelock is ignored.
        let s = sys(3, &[0], &[(0, 1), (1, 1), (2, 2)]);
        assert!(leads_to(&s, &|x| x == 2 || x == 0, &|x| x == 1));
    }

    #[test]
    fn leads_to_trivial_when_p_implies_q() {
        let s = sys(2, &[0], &[(0, 0), (1, 1)]);
        assert!(leads_to(&s, &|x| x == 0, &|x| x == 0));
    }

    #[test]
    fn leads_to_always_requires_stability() {
        let s = sys(3, &[0], &[(0, 1), (1, 2), (2, 2)]);
        assert!(leads_to_always(&s, &|x| x == 0, &|x| x == 2));
        // 1 is reached but not stable:
        assert!(!leads_to_always(&s, &|x| x == 0, &|x| x == 1));
    }

    #[test]
    fn avoider_trimming_handles_dead_ends_into_q() {
        // 0 -> 1 -> q(2); 1 has a non-q successor 0, and 0 -> 1 only:
        // cycle {0,1} avoids q forever.
        let s = sys(3, &[0], &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        assert!(!leads_to(&s, &|x| x == 0, &|x| x == 2));
    }
}
