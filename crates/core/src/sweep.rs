//! Dependency-free parallel sweep driver and worker-pool plumbing.
//!
//! The cross-validation suites and the `experiments` harness all have the
//! same shape: evaluate a pure function of a seed over thousands of seeds
//! and aggregate the results. This module fans such sweeps out over the
//! machine's cores with `std::thread::scope` — no rayon, no channels, no
//! unsafe — while keeping the output **deterministic**: results come back
//! in seed order regardless of how the OS schedules the workers, so a
//! sweep's aggregate (medians, tables, BENCH json) is reproducible.
//!
//! Work is distributed in **contiguous chunks, one per worker**: each
//! worker owns a dense sub-range of the seed space and writes its results
//! into its own output segment, so there is no shared cursor, no mutex,
//! and no final sort. (An earlier fine-grained work-stealing scheme paid
//! an atomic round-trip and a result re-sort per sweep; at low core
//! counts that overhead made the "parallel" path lose to the serial one.)
//! At one worker the sweep runs fully inline — the parallel entry points
//! are never slower than a hand-written serial loop there.
//!
//! The same chunked `thread::scope` plumbing ([`join_all`],
//! [`chunk_ranges`]) drives the sharded GCL compiler, the parallel BFS,
//! and the FB-Trim SCC decomposition in [`crate::gcl`] and
//! [`crate::FiniteSystem`].
//!
//! # Thread-count control
//!
//! [`available_workers`] honours the `GRAYBOX_THREADS` environment
//! variable (a positive integer) before falling back to
//! `available_parallelism()`, so CI and `graybox-bench` runs are
//! reproducible on any machine. Benchmarks that measure scaling pass
//! explicit counts to the `*_on` entry points instead.
//!
//! # Example
//!
//! ```
//! use graybox_core::sweep::sweep_seeds;
//!
//! let squares = sweep_seeds(0..100u64, |seed| seed * seed);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

use std::ops::Range;

/// The worker count an unconstrained [`sweep_seeds`] call (or any other
/// parallel engine entry point) would use: the `GRAYBOX_THREADS`
/// environment variable if it parses as a positive integer, else
/// `available_parallelism()`, floored at 1. Public so harnesses can
/// record how many threads actually ran (`threads_used` in
/// `BENCH_core.json`) — on a 1-core container every parallel path falls
/// back to a fully inline sweep (no threads spawned), and a parallel
/// "speedup" of ≈1× there is the expected serial fallback, not a
/// regression.
pub fn available_workers() -> usize {
    if let Ok(value) = std::env::var("GRAYBOX_THREADS") {
        if let Ok(threads) = value.trim().parse::<usize>() {
            if threads >= 1 {
                return threads.min(256);
            }
        }
        // Unparsable or zero: fall through to the hardware count rather
        // than aborting a run over a typo'd override.
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper bound on worker threads; sweeps are CPU-bound, so there is no
/// point oversubscribing far beyond the core count.
fn worker_count(jobs: u64) -> usize {
    let jobs = usize::try_from(jobs).unwrap_or(usize::MAX);
    available_workers().min(jobs).max(1)
}

/// Splits `0..len` into at most `workers` contiguous, non-empty ranges
/// whose starts are multiples of `align` (the last range absorbs the
/// remainder). Alignment lets chunk owners write disjoint *blocks* of a
/// `u64` bitset without sharing any word. `align` must be a power of two.
pub(crate) fn chunk_ranges(len: usize, workers: usize, align: usize) -> Vec<Range<usize>> {
    debug_assert!(align.is_power_of_two());
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, len);
    // Ceil to a multiple of `align` so every boundary is aligned.
    let step = len.div_ceil(workers).next_multiple_of(align);
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    while start < len {
        let end = (start + step).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Runs every task on its own scoped thread (the first on the calling
/// thread) and returns the results in task order. Panics propagate to the
/// caller once every worker has unwound. The core fan-out primitive behind
/// every parallel path in this crate.
pub(crate) fn join_all<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let mut tasks = tasks.into_iter();
    let Some(first) = tasks.next() else {
        return Vec::new();
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.map(|task| scope.spawn(task)).collect();
        let mut results = Vec::with_capacity(handles.len() + 1);
        results.push(first());
        for handle in handles {
            results.push(
                handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic)),
            );
        }
        results
    })
}

/// Runs `f(seed)` for every seed in `seeds` across all cores and returns
/// the results **in seed order**.
///
/// `f` must be pure per seed (it may not rely on call order); it is called
/// exactly once per seed. Panics in `f` propagate: the sweep panics after
/// all workers unwind, so a failing property inside a sweep still fails
/// the enclosing test.
pub fn sweep_seeds<T, F>(seeds: Range<u64>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let jobs = seeds.end.saturating_sub(seeds.start);
    sweep_seeds_on(seeds, worker_count(jobs), f)
}

/// [`sweep_seeds`] with an explicit worker count (1 = sequential).
///
/// The bench harness uses this to measure scaling; everything else should
/// call [`sweep_seeds`].
pub fn sweep_seeds_on<T, F>(seeds: Range<u64>, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let start = seeds.start;
    let len = seeds.end.saturating_sub(seeds.start);
    if len == 0 {
        return Vec::new();
    }
    // The result vector must hold one entry per seed, so a range beyond
    // the address space cannot be swept anyway.
    let len_states = usize::try_from(len).expect("seed range exceeds the address space");
    let workers = workers.clamp(1, len_states);
    if workers == 1 {
        return seeds.map(f).collect();
    }

    // Contiguous chunks, one per worker: each worker returns its segment
    // of the result vector, and concatenating segments in chunk order *is*
    // seed order — no shared cursor, no mutex, no sort.
    let f = &f;
    let tasks: Vec<_> = chunk_ranges(len_states, workers, 1)
        .into_iter()
        .map(|range| {
            move || -> Vec<T> {
                range
                    .map(|offset| f(start + offset as u64))
                    .collect::<Vec<T>>()
            }
        })
        .collect();
    let mut results = Vec::with_capacity(len_states);
    for segment in join_all(tasks) {
        results.extend(segment);
    }
    debug_assert_eq!(results.len(), len_states);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_seed_order() {
        let out = sweep_seeds(10..210u64, |seed| seed * 3);
        assert_eq!(out.len(), 200);
        for (i, value) in out.iter().enumerate() {
            assert_eq!(*value, (10 + i as u64) * 3);
        }
    }

    #[test]
    fn empty_range_yields_nothing() {
        let out: Vec<u64> = sweep_seeds(5..5u64, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn every_seed_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = sweep_seeds_on(0..1_000u64, 7, |seed| {
            calls.fetch_add(1, Ordering::Relaxed);
            seed
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1_000);
        assert_eq!(out, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let seq = sweep_seeds_on(0..257u64, 1, |s| s.wrapping_mul(0x9E3779B9));
        let par = sweep_seeds_on(0..257u64, 4, |s| s.wrapping_mul(0x9E3779B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn available_workers_is_at_least_one() {
        assert!(available_workers() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        sweep_seeds_on(0..64u64, 4, |seed| {
            if seed == 37 {
                panic!("boom at 37");
            }
            seed
        });
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_and_align() {
        for (len, workers, align) in [
            (1usize, 1usize, 1usize),
            (100, 3, 1),
            (100, 7, 64),
            (1_000_000, 8, 64),
            (63, 8, 64),
            (64, 2, 64),
            (129, 2, 64),
        ] {
            let ranges = chunk_ranges(len, workers, align);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= workers);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
                assert_eq!(pair[1].start % align, 0);
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
        }
        assert!(chunk_ranges(0, 4, 64).is_empty());
    }

    #[test]
    fn join_all_preserves_task_order() {
        let tasks: Vec<_> = (0..9usize).map(|i| move || i * i).collect();
        assert_eq!(join_all(tasks), (0..9).map(|i| i * i).collect::<Vec<_>>());
        let empty: Vec<fn() -> usize> = Vec::new();
        assert!(join_all(empty).is_empty());
    }
}
