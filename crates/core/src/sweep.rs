//! Dependency-free parallel sweep driver.
//!
//! The cross-validation suites and the `experiments` harness all have the
//! same shape: evaluate a pure function of a seed over thousands of seeds
//! and aggregate the results. This module fans such sweeps out over the
//! machine's cores with `std::thread::scope` — no rayon, no channels, no
//! unsafe — while keeping the output **deterministic**: results come back
//! in seed order regardless of how the OS schedules the workers, so a
//! sweep's aggregate (medians, tables, BENCH json) is reproducible.
//!
//! Work is distributed dynamically (an atomic cursor over the seed range),
//! so a few slow seeds — e.g. random systems that happen to have large
//! SCCs — do not idle the other workers, and speedup stays near-linear.
//!
//! # Example
//!
//! ```
//! use graybox_core::sweep::sweep_seeds;
//!
//! let squares = sweep_seeds(0..100u64, |seed| seed * seed);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The worker count an unconstrained [`sweep_seeds`] call would use:
/// `available_parallelism()`, floored at 1. Public so harnesses can
/// record how many threads actually ran (`threads_used` in
/// `BENCH_core.json`) — on a 1-core container [`sweep_seeds`] falls back
/// to a fully inline sweep (no threads spawned), and a parallel
/// "speedup" of ≈1× there is the expected serial fallback, not a
/// regression.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper bound on worker threads; sweeps are CPU-bound, so there is no
/// point oversubscribing far beyond the core count.
fn worker_count(jobs: u64) -> usize {
    let jobs = usize::try_from(jobs).unwrap_or(usize::MAX);
    available_workers().min(jobs).max(1)
}

/// Runs `f(seed)` for every seed in `seeds` across all cores and returns
/// the results **in seed order**.
///
/// `f` must be pure per seed (it may not rely on call order); it is called
/// exactly once per seed. Panics in `f` propagate: the sweep panics after
/// all workers unwind, so a failing property inside a sweep still fails
/// the enclosing test.
pub fn sweep_seeds<T, F>(seeds: Range<u64>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let jobs = seeds.end.saturating_sub(seeds.start);
    sweep_seeds_on(seeds, worker_count(jobs), f)
}

/// [`sweep_seeds`] with an explicit worker count (1 = sequential).
///
/// The bench harness uses this to measure scaling; everything else should
/// call [`sweep_seeds`].
pub fn sweep_seeds_on<T, F>(seeds: Range<u64>, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let start = seeds.start;
    let len = seeds.end.saturating_sub(seeds.start);
    if len == 0 {
        return Vec::new();
    }
    // The result vector must hold one entry per seed, so a range beyond
    // the address space cannot be swept anyway.
    let len_states = usize::try_from(len).expect("seed range exceeds the address space");
    let workers = workers.clamp(1, len_states);
    if workers == 1 {
        return seeds.map(f).collect();
    }

    // Dynamic scheduling: workers pull small batches off a shared cursor,
    // collect (index, result) locally, and the merged output is sorted by
    // index. All-safe and allocation-light; the mutex is touched once per
    // worker, not per seed.
    let cursor = AtomicU64::new(0);
    let batch = (len / (workers as u64 * 8)).clamp(1, 1024);
    let collected: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(len_states));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(u64, T)> = Vec::new();
                loop {
                    let first = cursor.fetch_add(batch, Ordering::Relaxed);
                    if first >= len {
                        break;
                    }
                    let last = (first + batch).min(len);
                    for offset in first..last {
                        local.push((offset, f(start + offset)));
                    }
                }
                collected
                    .lock()
                    .expect("a sweep worker panicked")
                    .append(&mut local);
            });
        }
    });
    let mut indexed = collected.into_inner().expect("a sweep worker panicked");
    indexed.sort_unstable_by_key(|&(offset, _)| offset);
    debug_assert_eq!(indexed.len() as u64, len);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_seed_order() {
        let out = sweep_seeds(10..210u64, |seed| seed * 3);
        assert_eq!(out.len(), 200);
        for (i, value) in out.iter().enumerate() {
            assert_eq!(*value, (10 + i as u64) * 3);
        }
    }

    #[test]
    fn empty_range_yields_nothing() {
        let out: Vec<u64> = sweep_seeds(5..5u64, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn every_seed_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = sweep_seeds_on(0..1_000u64, 7, |seed| {
            calls.fetch_add(1, Ordering::Relaxed);
            seed
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1_000);
        assert_eq!(out, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let seq = sweep_seeds_on(0..257u64, 1, |s| s.wrapping_mul(0x9E3779B9));
        let par = sweep_seeds_on(0..257u64, 4, |s| s.wrapping_mul(0x9E3779B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn available_workers_is_at_least_one() {
        assert!(available_workers() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        sweep_seeds(0..64u64, |seed| {
            if seed == 37 {
                panic!("boom at 37");
            }
            seed
        });
    }
}
