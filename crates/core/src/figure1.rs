//! The paper's Figure 1 counterexample, reconstructed.
//!
//! Figure 1 shows why `[C ⇒ A]_init` is not enough for graybox design:
//! both `A` and `C` have the single init-anchored computation
//! `s0, s1, s2, s3, …`, so `[C ⇒ A]_init` holds. A transient fault `F`
//! throws the system from `s0` to the illegitimate state `s*`. In `A`,
//! `s*` continues as `s*, s2, s3, …` — whose suffix `s2, s3, …` is a
//! suffix of the legitimate computation — so `A` is stabilizing to `A`.
//! In `C`, `s*` has no such continuation, so `C` is *not* stabilizing
//! to `A`, even though it implements `A` from initial states.

use crate::FiniteSystem;

/// Index of the paper's state `s0` (the initial state).
pub const S0: usize = 0;
/// Index of `s1`.
pub const S1: usize = 1;
/// Index of `s2`.
pub const S2: usize = 2;
/// Index of `s3` (which loops, standing for the tail `s3, …`).
pub const S3: usize = 3;
/// Index of the fault-introduced state `s*`.
pub const S_STAR: usize = 4;

/// Builds the pair `(A, C)` of Figure 1.
///
/// `A` = `{s0→s1→s2→s3→s3…, s*→s2→…}`, init `{s0}`.
/// `C` = the same chain, but from `s*` the only computation stays at `s*`.
///
/// # Example
///
/// ```
/// use graybox_core::figure1;
///
/// let (a, c) = figure1::systems();
/// assert!(a.has_edge(figure1::S_STAR, figure1::S2));
/// assert!(!c.has_edge(figure1::S_STAR, figure1::S2));
/// ```
pub fn systems() -> (FiniteSystem, FiniteSystem) {
    let a = FiniteSystem::builder(5)
        .initial(S0)
        .edges([(S0, S1), (S1, S2), (S2, S3), (S3, S3), (S_STAR, S2)])
        .build()
        .expect("figure 1 spec is well-formed");
    let c = FiniteSystem::builder(5)
        .initial(S0)
        .edges([(S0, S1), (S1, S2), (S2, S3), (S3, S3), (S_STAR, S_STAR)])
        .build()
        .expect("figure 1 impl is well-formed");
    (a, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{everywhere_implements, implements_from_init, is_stabilizing_to};

    #[test]
    fn c_implements_a_from_init() {
        let (a, c) = systems();
        assert!(implements_from_init(&c, &a));
        assert!(implements_from_init(&a, &c)); // init-reachable parts coincide
    }

    #[test]
    fn a_is_stabilizing_to_a() {
        let (a, _) = systems();
        assert!(is_stabilizing_to(&a, &a).holds());
    }

    #[test]
    fn c_is_not_stabilizing_to_a() {
        let (a, c) = systems();
        let report = is_stabilizing_to(&c, &a);
        assert_eq!(report.divergent_edge, Some((S_STAR, S_STAR)));
    }

    #[test]
    fn c_is_not_an_everywhere_implementation() {
        // This is the diagnosis the paper draws: the counterexample evades
        // everywhere-implementation, which is why graybox design demands it.
        let (a, c) = systems();
        assert!(!everywhere_implements(&c, &a));
    }

    #[test]
    fn fault_state_is_illegitimate() {
        let (a, c) = systems();
        let report = is_stabilizing_to(&c, &a);
        assert!(!report.legitimate_states.contains(S_STAR));
        assert!(report.legitimate_states.contains(S0));
        assert!(report.legitimate_states.contains(S3));
        let _ = a;
    }

    #[test]
    fn sequence_level_cross_check() {
        // Check the graph-level verdicts against the paper's sequence-based
        // definitions on bounded prefixes: the computation of A from s* is
        // "s*, s2, s3, s3", while C only offers "s*, s*, s*, s*".
        let (a, c) = systems();
        assert_eq!(
            a.computations_from(S_STAR, 4),
            vec![vec![S_STAR, S2, S3, S3]]
        );
        assert_eq!(
            c.computations_from(S_STAR, 4),
            vec![vec![S_STAR, S_STAR, S_STAR, S_STAR]]
        );
        // And the legitimate computation is shared:
        assert_eq!(a.computations_from(S0, 4), c.computations_from(S0, 4));
    }
}
