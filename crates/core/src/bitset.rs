//! Dense bitset state sets.
//!
//! A [`StateSet`] represents a subset of the state space `0..n` as packed
//! `u64` blocks: membership is one shift-and-mask, intersection and
//! subset tests are word-wide AND, and iteration walks set bits with
//! `trailing_zeros`. The transition engine ([`crate::FiniteSystem`]) uses
//! it for initial states, reachability closures, and legitimate sets,
//! replacing the `BTreeSet<usize>` representation (now retained only in
//! [`crate::reference`] for cross-validation).

use std::borrow::Borrow;
use std::collections::BTreeSet;
use std::fmt;

const BLOCK_BITS: usize = 64;

/// A set of states (small `usize` indices) stored as a dense bitset.
///
/// Equality ignores trailing zero blocks, so sets built with different
/// capacities compare by membership alone.
///
/// # Example
///
/// ```
/// use graybox_core::StateSet;
///
/// let set: StateSet = [3, 0, 7].into_iter().collect();
/// assert!(set.contains(3) && set.contains(&7));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 3, 7]);
/// assert_eq!(set.len(), 3);
/// ```
#[derive(Clone, Default, Eq)]
pub struct StateSet {
    blocks: Vec<u64>,
}

impl StateSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StateSet::default()
    }

    /// Creates an empty set preallocated for states `0..num_states`.
    pub fn with_capacity(num_states: usize) -> Self {
        StateSet {
            blocks: vec![0; num_states.div_ceil(BLOCK_BITS)],
        }
    }

    /// Inserts `state`; returns `true` if it was not already present.
    pub fn insert(&mut self, state: usize) -> bool {
        let block = state / BLOCK_BITS;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (state % BLOCK_BITS);
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes `state`; returns `true` if it was present.
    pub fn remove(&mut self, state: usize) -> bool {
        let block = state / BLOCK_BITS;
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << (state % BLOCK_BITS);
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        present
    }

    /// Membership test. Accepts `usize` or `&usize`, like the `BTreeSet`
    /// API this type replaced.
    pub fn contains(&self, state: impl Borrow<usize>) -> bool {
        let state = *state.borrow();
        self.blocks
            .get(state / BLOCK_BITS)
            .is_some_and(|block| block & (1u64 << (state % BLOCK_BITS)) != 0)
    }

    /// Number of states in the set.
    pub fn len(&self) -> usize {
        self.blocks
            .iter()
            .map(|block| block.count_ones() as usize)
            .sum()
    }

    /// True when no state is in the set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&block| block == 0)
    }

    /// Removes all states, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Iterates the states in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_index: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// True when every state of `self` is in `other`.
    pub fn is_subset(&self, other: &StateSet) -> bool {
        self.blocks
            .iter()
            .enumerate()
            .all(|(i, &block)| block & !other.blocks.get(i).copied().unwrap_or(0) == 0)
    }

    /// The states present in both sets.
    pub fn intersection(&self, other: &StateSet) -> StateSet {
        let blocks = self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(&a, &b)| a & b)
            .collect();
        StateSet { blocks }
    }

    /// Crate-internal: wraps raw `u64` blocks (bit `i` of block `b`
    /// encodes state `b * 64 + i`) without copying. The sharded GCL
    /// compiler assembles init sets this way from 64-aligned chunks.
    pub(crate) fn from_blocks(blocks: Vec<u64>) -> StateSet {
        StateSet { blocks }
    }

    /// Crate-internal: mutable raw block view for aligned block-wise
    /// merges. The set must have been sized (via
    /// [`with_capacity`](Self::with_capacity)) to cover every block the
    /// caller writes.
    pub(crate) fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    /// Adds every state of `other` to `self`.
    pub fn union_with(&mut self, other: &StateSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (mine, &theirs) in self.blocks.iter_mut().zip(&other.blocks) {
            *mine |= theirs;
        }
    }
}

impl PartialEq for StateSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.blocks.len() <= other.blocks.len() {
            (&self.blocks, &other.blocks)
        } else {
            (&other.blocks, &self.blocks)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&block| block == 0)
    }
}

impl PartialEq<BTreeSet<usize>> for StateSet {
    fn eq(&self, other: &BTreeSet<usize>) -> bool {
        self.len() == other.len() && other.iter().all(|&s| self.contains(s))
    }
}

impl fmt::Debug for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for StateSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = StateSet::new();
        for state in iter {
            set.insert(state);
        }
        set
    }
}

impl Extend<usize> for StateSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for state in iter {
            self.insert(state);
        }
    }
}

impl<'a> IntoIterator for &'a StateSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over the states of a [`StateSet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_index += 1;
            self.current = *self.blocks.get(self.block_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.block_index * BLOCK_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = StateSet::new();
        assert!(set.insert(5));
        assert!(!set.insert(5));
        assert!(set.contains(5) && set.contains(5));
        assert!(!set.contains(4));
        assert!(set.remove(5));
        assert!(!set.remove(5));
        assert!(set.is_empty());
    }

    #[test]
    fn iteration_is_ascending_across_blocks() {
        let states = [0usize, 63, 64, 65, 127, 128, 300];
        let set: StateSet = states.into_iter().collect();
        assert_eq!(set.iter().collect::<Vec<_>>(), states.to_vec());
        assert_eq!(set.len(), states.len());
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = StateSet::with_capacity(1000);
        a.insert(3);
        let b: StateSet = [3].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(b, a);
        a.insert(999);
        assert_ne!(a, b);
    }

    #[test]
    fn equality_against_btreeset() {
        let set: StateSet = [1, 2, 70].into_iter().collect();
        assert_eq!(set, BTreeSet::from([1, 2, 70]));
        assert!(set != BTreeSet::from([1, 2]));
        assert!(set != BTreeSet::from([1, 2, 71]));
    }

    #[test]
    fn subset_and_intersection() {
        let small: StateSet = [1, 65].into_iter().collect();
        let big: StateSet = [1, 2, 65, 130].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert_eq!(big.intersection(&small), small);
        // Subset across different block counts.
        let tall: StateSet = [1, 65, 500].into_iter().collect();
        assert!(!tall.is_subset(&big));
        assert!(small.is_subset(&tall));
    }

    #[test]
    fn union_with_grows() {
        let mut a: StateSet = [1].into_iter().collect();
        let b: StateSet = [200].into_iter().collect();
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(200));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn debug_prints_as_a_set() {
        let set: StateSet = [2, 0].into_iter().collect();
        assert_eq!(format!("{set:?}"), "{0, 2}");
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut set: StateSet = (0..100).collect();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }
}
