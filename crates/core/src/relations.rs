use std::fmt;

use crate::{FiniteSystem, StateSet};

/// The paper's `[C ⇒ A]_init`: every computation of `C` that starts from an
/// initial state of `C` is a computation of `A` starting from an initial
/// state of `A`.
///
/// For path-set systems this holds exactly when `C`'s initial states are
/// initial in `A` and every edge on the init-reachable part of `C` is an
/// edge of `A`.
///
/// # Example
///
/// ```
/// use graybox_core::{implements_from_init, FiniteSystem};
///
/// let a = FiniteSystem::builder(2).initial(0).edges([(0, 1), (1, 1), (1, 0)]).build()?;
/// let c = FiniteSystem::builder(2).initial(0).edges([(0, 1), (1, 1)]).build()?;
/// assert!(implements_from_init(&c, &a));
/// assert!(!implements_from_init(&a, &c)); // A allows (1,0), C does not
/// # Ok::<(), graybox_core::SystemError>(())
/// ```
pub fn implements_from_init(c: &FiniteSystem, a: &FiniteSystem) -> bool {
    if c.num_states() != a.num_states() || !c.init().is_subset(a.init()) {
        return false;
    }
    let reachable = c.reachable_from_init();
    c.edges()
        .iter()
        .filter(|(from, _)| reachable.contains(from))
        .all(|(from, to)| a.has_edge(from, to))
}

/// The paper's `[C ⇒ A]`: every computation of `C` — from *any* state — is
/// a computation of `A`. For path-set systems this is edge-set inclusion.
///
/// Note the definition quantifies over all computations, not just
/// init-anchored ones, so initial states are irrelevant here; this is what
/// makes the relation composable under box (Lemma 0).
///
/// # Example
///
/// ```
/// use graybox_core::{everywhere_implements, FiniteSystem};
///
/// let a = FiniteSystem::builder(2).initial(0).edges([(0, 1), (1, 0), (1, 1)]).build()?;
/// let c = FiniteSystem::builder(2).initial(0).edges([(0, 1), (1, 0)]).build()?;
/// assert!(everywhere_implements(&c, &a));
/// # Ok::<(), graybox_core::SystemError>(())
/// ```
pub fn everywhere_implements(c: &FiniteSystem, a: &FiniteSystem) -> bool {
    c.num_states() == a.num_states() && c.edges().is_subset(a.edges())
}

/// Outcome of a stabilization check, with a counterexample when it fails.
///
/// Produced by [`is_stabilizing_to`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizationReport {
    /// A transition of `C` that lies on a cycle of `C` but is not a
    /// legitimate transition of `A` (outside `A`'s init-reachable
    /// subgraph). `None` when the system stabilizes.
    pub divergent_edge: Option<(usize, usize)>,
    /// The states of `A` reachable from `A`'s initial states — the
    /// "legitimate" states every computation must eventually confine
    /// itself to.
    pub legitimate_states: StateSet,
}

impl StabilizationReport {
    /// True when the checked system is stabilizing to the specification.
    pub fn holds(&self) -> bool {
        self.divergent_edge.is_none()
    }
}

impl fmt::Display for StabilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.divergent_edge {
            None => write!(f, "stabilizing"),
            Some((from, to)) => write!(
                f,
                "not stabilizing: edge ({from}, {to}) recurs outside the legitimate subgraph"
            ),
        }
    }
}

/// The paper's "`C` is stabilizing to `A`": every computation of `C` has a
/// suffix that is a suffix of some computation of `A` that starts at an
/// initial state of `A`.
///
/// For path-set systems: let `L` be the states of `A` reachable from
/// `A.init` ("legitimate" states) and call an edge of `C` *divergent* when
/// it is not an `A`-edge between legitimate states. An infinite computation
/// of `C` fails to stabilize exactly when it takes divergent edges forever,
/// which is possible iff some divergent edge lies on a cycle of `C`. So the
/// check is: **no divergent edge of `C` is on a cycle of `C`**.
///
/// This also covers the degenerate requirement that the converged suffix be
/// a *suffix of an init-anchored* computation of `A` (not merely any
/// `A`-path): once a computation only takes `A`-edges between states in
/// `L`, prefixing the `A`-path that reaches `L` yields an init-anchored
/// computation of `A`, and fusion closure splices them.
///
/// # Example
///
/// ```
/// use graybox_core::{is_stabilizing_to, FiniteSystem};
///
/// // Spec: alternate 0,1 forever. Impl: same, but from illegitimate state 2
/// // it falls back into state 0 — a convergence step.
/// let a = FiniteSystem::builder(3).initial(0).edges([(0, 1), (1, 0), (2, 2)]).build()?;
/// let c = FiniteSystem::builder(3).initial(0).edges([(0, 1), (1, 0), (2, 0)]).build()?;
/// assert!(is_stabilizing_to(&c, &a).holds());
/// assert!(!is_stabilizing_to(&a, &a).holds()); // A itself loops at 2 forever
/// # Ok::<(), graybox_core::SystemError>(())
/// ```
pub fn is_stabilizing_to(c: &FiniteSystem, a: &FiniteSystem) -> StabilizationReport {
    let legitimate = a.reachable_from_init();
    if c.num_states() != a.num_states() {
        return StabilizationReport {
            divergent_edge: c.edges().iter().next(),
            legitimate_states: legitimate.clone(),
        };
    }
    // An edge (from, to) of C recurs forever on some computation iff it
    // lies on a cycle of C; since the edge exists, that is exactly
    // scc[from] == scc[to] (self-loops included). One SCC pass replaces a
    // BFS per divergent edge: O(V + E) total instead of O(E·(V + E)).
    let scc = c.scc_ids();
    for (from, to) in c.edges() {
        let divergent =
            !(legitimate.contains(from) && legitimate.contains(to) && a.has_edge(from, to));
        if divergent && scc[from] == scc[to] {
            return StabilizationReport {
                divergent_edge: Some((from, to)),
                legitimate_states: legitimate.clone(),
            };
        }
    }
    StabilizationReport {
        divergent_edge: None,
        legitimate_states: legitimate.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::box_compose;
    use std::collections::BTreeSet;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    #[test]
    fn implements_from_init_ignores_unreachable_extra_edges() {
        let a = sys(3, &[0], &[(0, 1), (1, 0), (2, 2)]);
        // C has an extra edge (2,0) but state 2 is unreachable from init.
        let c = sys(3, &[0], &[(0, 1), (1, 0), (2, 0), (2, 2)]);
        assert!(implements_from_init(&c, &a));
        assert!(!everywhere_implements(&c, &a));
    }

    #[test]
    fn implements_from_init_requires_init_inclusion() {
        let a = sys(2, &[0], &[(0, 0), (1, 1)]);
        let c = sys(2, &[1], &[(1, 1), (0, 0)]);
        assert!(!implements_from_init(&c, &a));
    }

    #[test]
    fn everywhere_implies_from_init_when_inits_included() {
        let a = sys(2, &[0, 1], &[(0, 1), (1, 0), (0, 0), (1, 1)]);
        let c = sys(2, &[0], &[(0, 1), (1, 0)]);
        assert!(everywhere_implements(&c, &a));
        assert!(implements_from_init(&c, &a));
    }

    #[test]
    fn everywhere_implements_is_reflexive_and_transitive() {
        let a = sys(2, &[0], &[(0, 1), (1, 0), (1, 1)]);
        let b = sys(2, &[0], &[(0, 1), (1, 0)]);
        let c = sys(2, &[0], &[(0, 1), (1, 1), (1, 0)]);
        assert!(everywhere_implements(&a, &a));
        assert!(everywhere_implements(&b, &a));
        assert!(everywhere_implements(&b, &c) && everywhere_implements(&c, &a));
        assert!(everywhere_implements(&b, &a));
    }

    #[test]
    fn stabilization_accepts_convergent_impl() {
        let a = sys(3, &[0], &[(0, 1), (1, 0), (2, 2)]);
        let c = sys(3, &[0], &[(0, 1), (1, 0), (2, 0)]);
        let report = is_stabilizing_to(&c, &a);
        assert!(report.holds());
        assert_eq!(report.legitimate_states, BTreeSet::from([0, 1]));
    }

    #[test]
    fn stabilization_rejects_divergent_cycle() {
        let a = sys(3, &[0], &[(0, 1), (1, 0), (2, 2)]);
        // From state 2 the impl loops 2 -> 2 forever: never converges.
        let c = sys(3, &[0], &[(0, 1), (1, 0), (2, 2)]);
        let report = is_stabilizing_to(&c, &a);
        assert_eq!(report.divergent_edge, Some((2, 2)));
        assert!(!report.holds());
        assert!(report.to_string().contains("not stabilizing"));
    }

    #[test]
    fn stabilization_rejects_two_state_divergent_cycle() {
        let a = sys(4, &[0], &[(0, 1), (1, 0), (2, 2), (3, 3)]);
        let c = sys(4, &[0], &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let report = is_stabilizing_to(&c, &a);
        assert!(!report.holds());
    }

    #[test]
    fn stabilization_requires_legitimate_states_not_just_a_edges() {
        // (2,3),(3,2) are edges of A, but 2 and 3 are unreachable from
        // A.init, so looping there is not "a suffix of a computation of A
        // that starts at an initial state of A".
        let a = sys(4, &[0], &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let c = sys(4, &[0], &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let report = is_stabilizing_to(&c, &a);
        assert!(!report.holds());
    }

    #[test]
    fn stabilizing_is_implied_by_everywhere_implement_of_self_stabilizing_spec() {
        // §2.1: [C ⇒ A] and A stabilizing to A implies C stabilizing to A.
        let a = sys(3, &[0], &[(0, 1), (1, 0), (2, 0), (2, 1)]);
        assert!(is_stabilizing_to(&a, &a).holds());
        let c = sys(3, &[0], &[(0, 1), (1, 0), (2, 1)]);
        assert!(everywhere_implements(&c, &a));
        assert!(is_stabilizing_to(&c, &a).holds());
    }

    #[test]
    fn lemma0_on_a_concrete_instance() {
        // Lemma 0: [C ⇒ A] ∧ [W' ⇒ W] ⇒ [(C ⊓ W') ⇒ (A ⊓ W)].
        let a = sys(3, &[0], &[(0, 1), (1, 0), (2, 0), (2, 2)]);
        let c = sys(3, &[0], &[(0, 1), (1, 0), (2, 2)]);
        let w = sys(3, &[0, 2], &[(2, 0), (0, 0), (1, 1), (2, 2)]);
        let w_prime = sys(3, &[0], &[(2, 0), (0, 0), (1, 1)]);
        assert!(everywhere_implements(&c, &a));
        assert!(everywhere_implements(&w_prime, &w));
        let cw = box_compose(&c, &w_prime).unwrap();
        let aw = box_compose(&a, &w).unwrap();
        assert!(everywhere_implements(&cw, &aw));
    }

    #[test]
    fn mismatched_state_spaces_never_relate() {
        let a = sys(2, &[0], &[(0, 0), (1, 1)]);
        let c = sys(3, &[0], &[(0, 0), (1, 1), (2, 2)]);
        assert!(!implements_from_init(&c, &a));
        assert!(!everywhere_implements(&c, &a));
        assert!(!is_stabilizing_to(&c, &a).holds());
    }
}
