//! Exhaustively model-checked abstractions of the TME case study.
//!
//! The simulation experiments (T3/T4/…) sample the wrapped protocol's
//! behaviour; this module complements them with **exhaustive** checks at
//! small scale: abstractions of Ricart–Agrawala plus the graybox wrapper,
//! expressed in the guarded-command DSL of [`crate::gcl`] and verified
//! over their *entire* state spaces — every possible transient corruption
//! is just some state, and the model checker proves convergence from all
//! of them.
//!
//! Two abstractions live here:
//!
//! * [`build`] — the original 2-process model (≈2.6k states), with
//!   explicit deferred-reply bits. It materializes full
//!   [`FairComposition`]s and remains the smoke/tier-1 path; a twin
//!   written in the retained [`crate::gcl::reference`] DSL
//!   ([`build_reference`]) cross-validates the packed compiler and serves
//!   as the benchmark baseline.
//! * [`build_n`] — the n-process generalization (≈7.6M states at `n = 3`)
//!   checked by the streaming [`Program::fair_self_check`] pipeline,
//!   which never materializes per-command components. This is the
//!   workload the packed compiler exists for.
//!
//! ## The 2-process abstraction
//!
//! Timestamps collapse to a ground-truth order bit `ord` (who of two
//! simultaneously hungry processes requested first) and per-process belief
//! bits `k_i` (“my local information confirms my request precedes the
//! peer's” — the abstraction of `REQ_i lt i.REQ_j`). Channels are
//! single-slot (`empty` / `request` / `reply`); sending overwrites, which
//! subsumes loss and duplication. Deferred replies are a bit `d_i`.
//!
//! | paper | here |
//! |---|---|
//! | `t.i / h.i / e.i` | `m_i ∈ {0,1,2}` |
//! | `REQ_i lt i.REQ_j` | `k_i = 1` |
//! | deferred set | `d_i = 1` |
//! | FIFO channel `i→j` | slot `c_ij ∈ {empty, request, reply}` |
//! | wrapper `W_i` | `h.i ∧ ¬k_i → resend request` (never clobbering a reply in flight) |
//!
//! ## The n-process abstraction
//!
//! With `n` processes the pairwise structure becomes explicit: one
//! single-slot channel `c_ij` and one belief bit `k_ij` ("i's information
//! confirms its request precedes j's") per ordered pair, and `ord`
//! becomes a permutation of the processes — the ground-truth order in
//! which currently-hungry processes requested (requesting moves a process
//! to the back). Two representation changes keep the space at
//! `3^n · 3^{n(n-1)} · 2^{n(n-1)} · n!` (7 558 272 for `n = 3`) instead
//! of hundreds of millions:
//!
//! * **no deferred bits** — deferring a reply is modelled by *leaving the
//!   request in its slot*: `recv_request` is guarded to fire only when
//!   the receiver actually replies (not eating, not hungry-with-earlier-
//!   request), and a released process answers still-pending requests
//!   through the ordinary `recv_request` command;
//! * **`observe_request`** — an earlier-hungry process can *read* a
//!   later request without consuming it, learning `k_ij = 1` (in RA, a
//!   later-timestamped request confirms my precedence). Without this the
//!   pending-request encoding of deferral would lose that information
//!   and legitimate behaviour itself could starve.
//!
//! ## What is proved
//!
//! * the protocol's legitimate behaviour satisfies ME1 (never two eating);
//! * the **unwrapped** protocol is *not* stabilizing: the §4 deadlock
//!   (all hungry, channels empty, nobody believing it precedes) is a
//!   quiescent state outside legitimate behaviour;
//! * the **wrapped** composition is stabilizing to the protocol's
//!   legitimate behaviour from *every* state, under weak fairness — the
//!   paper's Theorem 8 in miniature, exhaustively, at 2 and 3 processes.

use std::collections::HashMap;

use crate::fairness::FairComposition;
use crate::gcl::ir::{Cond, Expr, IrCommand, Stmt};
use crate::gcl::reference::{
    CompiledProgram as RefCompiledProgram, Program as RefProgram, Valuation,
};
use crate::gcl::sym::{SymmetryElement, SymmetrySpec};
use crate::gcl::{CompiledProgram, GclError, Program, State, VarRef};
use crate::synthesis::stutter_closure;
use crate::FiniteSystem;

/// Mode values of the abstraction.
pub const THINKING: usize = 0;
/// Hungry.
pub const HUNGRY: usize = 1;
/// Eating.
pub const EATING: usize = 2;

/// Channel slot values.
pub const EMPTY: usize = 0;
/// A request is in flight.
pub const REQUEST: usize = 1;
/// A reply is in flight.
pub const REPLY: usize = 2;

#[derive(Debug, Clone, Copy)]
struct Vars {
    m: [VarRef; 2],
    c: [VarRef; 2], // c[0] = channel 0→1, c[1] = channel 1→0
    k: [VarRef; 2],
    d: [VarRef; 2],
    ord: VarRef,
}

fn declare(program: &mut Program) -> Vars {
    Vars {
        m: [program.var("m0", 3), program.var("m1", 3)],
        c: [program.var("c01", 3), program.var("c10", 3)],
        k: [program.var("k0", 2), program.var("k1", 2)],
        d: [program.var("d0", 2), program.var("d1", 2)],
        ord: program.var("ord", 2),
    }
}

fn protocol_commands(program: &mut Program, v: Vars, with_wrapper: bool) {
    for i in 0..2usize {
        let j = 1 - i;
        // Request CS: t → h, send request, forget stale belief; fix the
        // ground-truth order (a peer already hungry *or eating* precedes),
        // and void any reply still in flight to us — in the real protocol
        // a reply approves one specific request via its timestamp (the
        // monotonicity behind invariant I); the bit abstraction carries no
        // timestamp, so freshness is modelled by purging at request time.
        program.command(
            format!("request{i}"),
            move |s: &State<'_>| s.get(v.m[i]) == THINKING,
            move |s: &mut State<'_>| {
                s.set(v.m[i], HUNGRY);
                s.set(v.c[i], REQUEST);
                s.set(v.k[i], 0);
                s.set(v.ord, if s.get(v.m[j]) != THINKING { j } else { i });
                if s.get(v.c[j]) == REPLY {
                    s.set(v.c[j], EMPTY);
                }
            },
        );
        // Receive request: consume it; reply unless we are hungry with the
        // earlier request (then defer and *learn* we precede) or eating
        // (then defer).
        program.command(
            format!("recv_request{i}"),
            move |s: &State<'_>| s.get(v.c[j]) == REQUEST,
            move |s: &mut State<'_>| {
                s.set(v.c[j], EMPTY);
                let earlier = s.get(v.m[i]) == HUNGRY && s.get(v.ord) == i;
                if s.get(v.m[i]) == EATING || earlier {
                    s.set(v.d[i], 1);
                    if earlier {
                        s.set(v.k[i], 1);
                    }
                } else {
                    s.set(v.c[i], REPLY);
                }
            },
        );
        // Receive reply: while hungry it confirms precedence.
        program.command(
            format!("recv_reply{i}"),
            move |s: &State<'_>| s.get(v.c[j]) == REPLY,
            move |s: &mut State<'_>| {
                s.set(v.c[j], EMPTY);
                if s.get(v.m[i]) == HUNGRY {
                    s.set(v.k[i], 1);
                }
            },
        );
        // Grant CS.
        program.command(
            format!("enter{i}"),
            move |s: &State<'_>| s.get(v.m[i]) == HUNGRY && s.get(v.k[i]) == 1,
            move |s: &mut State<'_>| s.set(v.m[i], EATING),
        );
        // Release CS: back to thinking, send the deferred reply.
        program.command(
            format!("release{i}"),
            move |s: &State<'_>| s.get(v.m[i]) == EATING,
            move |s: &mut State<'_>| {
                s.set(v.m[i], THINKING);
                s.set(v.k[i], 0);
                if s.get(v.d[i]) == 1 {
                    s.set(v.d[i], 0);
                    s.set(v.c[i], REPLY);
                }
            },
        );
        if with_wrapper {
            // The graybox wrapper: while hungry without confirmed
            // precedence, re-send the request (into an empty or
            // request-holding slot; a reply in flight is not clobbered —
            // the single-slot abstraction of FIFO).
            program.command(
                format!("wrapper{i}"),
                move |s: &State<'_>| {
                    s.get(v.m[i]) == HUNGRY && s.get(v.k[i]) == 0 && s.get(v.c[i]) != REPLY
                },
                move |s: &mut State<'_>| s.set(v.c[i], REQUEST),
            );
        }
    }
}

fn is_init(v: Vars) -> impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync {
    move |s| {
        (0..2).all(|i| {
            s.get(v.m[i]) == THINKING
                && s.get(v.c[i]) == EMPTY
                && s.get(v.k[i]) == 0
                && s.get(v.d[i]) == 0
        }) && s.get(v.ord) == 0
    }
}

/// Assembles the 2-process model as a packed [`Program`] (with or
/// without the wrapper commands) plus its initial predicate — the unit
/// the benchmarks time and the differential suite compares.
pub fn program_2proc(
    with_wrapper: bool,
) -> (Program, impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync) {
    let mut program = Program::new();
    let vars = declare(&mut program);
    protocol_commands(&mut program, vars, with_wrapper);
    (program, is_init(vars))
}

// ---------------------------------------------------------------------
// The reference-DSL twin of the 2-process model: identical declarations
// and commands, written against the retained decode/encode compiler.
// Used as the benchmark baseline and to cross-validate the packed
// pipeline on the real case study (not just random programs).
// ---------------------------------------------------------------------

fn declare_reference(program: &mut RefProgram) -> Vars {
    Vars {
        m: [program.var("m0", 3), program.var("m1", 3)],
        c: [program.var("c01", 3), program.var("c10", 3)],
        k: [program.var("k0", 2), program.var("k1", 2)],
        d: [program.var("d0", 2), program.var("d1", 2)],
        ord: program.var("ord", 2),
    }
}

fn protocol_commands_reference(program: &mut RefProgram, v: Vars, with_wrapper: bool) {
    for i in 0..2usize {
        let j = 1 - i;
        program.command(
            format!("request{i}"),
            move |s: &Valuation| s[v.m[i]] == THINKING,
            move |s: &mut Valuation| {
                s[v.m[i]] = HUNGRY;
                s[v.c[i]] = REQUEST;
                s[v.k[i]] = 0;
                s[v.ord] = if s[v.m[j]] != THINKING { j } else { i };
                if s[v.c[j]] == REPLY {
                    s[v.c[j]] = EMPTY;
                }
            },
        );
        program.command(
            format!("recv_request{i}"),
            move |s: &Valuation| s[v.c[j]] == REQUEST,
            move |s: &mut Valuation| {
                s[v.c[j]] = EMPTY;
                let earlier = s[v.m[i]] == HUNGRY && s[v.ord] == i;
                if s[v.m[i]] == EATING || earlier {
                    s[v.d[i]] = 1;
                    if earlier {
                        s[v.k[i]] = 1;
                    }
                } else {
                    s[v.c[i]] = REPLY;
                }
            },
        );
        program.command(
            format!("recv_reply{i}"),
            move |s: &Valuation| s[v.c[j]] == REPLY,
            move |s: &mut Valuation| {
                s[v.c[j]] = EMPTY;
                if s[v.m[i]] == HUNGRY {
                    s[v.k[i]] = 1;
                }
            },
        );
        program.command(
            format!("enter{i}"),
            move |s: &Valuation| s[v.m[i]] == HUNGRY && s[v.k[i]] == 1,
            move |s: &mut Valuation| s[v.m[i]] = EATING,
        );
        program.command(
            format!("release{i}"),
            move |s: &Valuation| s[v.m[i]] == EATING,
            move |s: &mut Valuation| {
                s[v.m[i]] = THINKING;
                s[v.k[i]] = 0;
                if s[v.d[i]] == 1 {
                    s[v.d[i]] = 0;
                    s[v.c[i]] = REPLY;
                }
            },
        );
        if with_wrapper {
            program.command(
                format!("wrapper{i}"),
                move |s: &Valuation| s[v.m[i]] == HUNGRY && s[v.k[i]] == 0 && s[v.c[i]] != REPLY,
                move |s: &mut Valuation| s[v.c[i]] = REQUEST,
            );
        }
    }
}

/// The reference-DSL twin of [`program_2proc`].
pub fn program_2proc_reference(with_wrapper: bool) -> (RefProgram, impl Fn(&Valuation) -> bool) {
    let mut program = RefProgram::new();
    let vars = declare_reference(&mut program);
    protocol_commands_reference(&mut program, vars, with_wrapper);
    (program, move |s: &Valuation| {
        (0..2).all(|i| {
            s[vars.m[i]] == THINKING
                && s[vars.c[i]] == EMPTY
                && s[vars.k[i]] == 0
                && s[vars.d[i]] == 0
        }) && s[vars.ord] == 0
    })
}

/// The compiled abstract 2-process TME instance.
#[derive(Debug)]
pub struct AbstractTme {
    protocol: CompiledProgram,
    wrapped: CompiledProgram,
    fair_unwrapped: FairComposition,
    fair_wrapped: FairComposition,
    vars: Vars,
}

/// Builds the 2-process abstraction (protocol, and its weakly fair
/// compositions with and without the wrapper command).
///
/// # Errors
///
/// Returns [`GclError`] if compilation fails (it cannot, absent bugs).
pub fn build() -> Result<AbstractTme, GclError> {
    let mut plain = Program::new();
    let vars = declare(&mut plain);
    protocol_commands(&mut plain, vars, false);
    let (fair_unwrapped, protocol) = plain.compile_fair(is_init(vars))?;

    let (wrapped_program, winit) = program_2proc(true);
    let (fair_wrapped, wrapped) = wrapped_program.compile_fair(winit)?;

    Ok(AbstractTme {
        protocol,
        wrapped,
        fair_unwrapped,
        fair_wrapped,
        vars,
    })
}

/// Builds the 2-process abstraction with the retained reference
/// compiler; [`build`] and this must agree exactly (and a test asserts
/// it).
///
/// # Errors
///
/// Returns [`GclError`] if compilation fails (it cannot, absent bugs).
pub fn build_reference() -> Result<
    (
        FairComposition,
        RefCompiledProgram,
        FairComposition,
        RefCompiledProgram,
    ),
    GclError,
> {
    let (plain, init) = program_2proc_reference(false);
    let (fair_unwrapped, protocol) = plain.compile_fair(init)?;
    let (wrapped_program, winit) = program_2proc_reference(true);
    let (fair_wrapped, wrapped) = wrapped_program.compile_fair(winit)?;
    Ok((fair_unwrapped, protocol, fair_wrapped, wrapped))
}

impl AbstractTme {
    /// The compiled protocol (its system's init-reachable part is the
    /// legitimate behaviour).
    pub fn protocol(&self) -> &FiniteSystem {
        self.protocol.system()
    }

    /// Total number of global states.
    pub fn num_states(&self) -> usize {
        self.protocol.system().num_states()
    }

    /// The wrapped system (protocol plus wrapper commands) — the finite
    /// stand-in for `Lspec`: by Lemma 6 the wrapper's re-sends are
    /// behaviour the specification allows, so legitimacy and the
    /// convergence target are defined over this system.
    pub fn wrapped(&self) -> &FiniteSystem {
        self.wrapped.system()
    }

    /// Number of legitimate (init-reachable, wrapper included) states.
    pub fn num_legitimate(&self) -> usize {
        self.wrapped.system().reachable_from_init().len()
    }

    /// ME1 over legitimate behaviour (wrapper included): never both eating.
    pub fn me1_invariant(&self) -> bool {
        let v = self.vars;
        let decode = |state: usize| self.protocol.decode(state);
        let not_both_eating = move |state: usize| {
            let values = decode(state);
            !(values[v.m[0].index()] == EATING && values[v.m[1].index()] == EATING)
        };
        // Invariant over the init-reachable subgraph of the wrapped system
        // (a superset of the bare protocol's — Lemma 6 interference
        // freedom is part of what is being checked here).
        self.wrapped
            .system()
            .reachable_from_init()
            .iter()
            .all(not_both_eating)
    }

    /// Is the *unwrapped* protocol stabilizing to its own legitimate
    /// behaviour? (No — the §4 deadlock is a quiescent illegitimate state.)
    pub fn unwrapped_stabilizes(&self) -> bool {
        self.fair_unwrapped
            .is_stabilizing_to(&stutter_closure(self.protocol.system()))
            .holds()
    }

    /// Is the *wrapped* composition stabilizing to the legitimate
    /// behaviour of the wrapped system (the `Lspec` stand-in), from every
    /// state, under weak fairness? This is Theorem 8 in miniature:
    /// `M ⊓ W` is stabilizing to `Lspec` — and `Lspec` admits the
    /// wrapper's re-sends (Lemma 6), so the target includes them.
    pub fn wrapped_stabilizes(&self) -> bool {
        self.fair_wrapped
            .is_stabilizing_to(&stutter_closure(self.wrapped.system()))
            .holds()
    }

    /// Encodes the §4 deadlock state: both hungry, channels empty, neither
    /// believing it precedes, nothing deferred.
    pub fn deadlock_state(&self) -> usize {
        // Mixed-radix with declaration order m0,m1,c01,c10,k0,k1,d0,d1,ord
        // (component 0 least significant, domains 3,3,3,3,2,2,2,2,2).
        let values = [HUNGRY, HUNGRY, EMPTY, EMPTY, 0, 0, 0, 0, 0];
        let domains = [3usize, 3, 3, 3, 2, 2, 2, 2, 2];
        values
            .iter()
            .zip(domains)
            .rev()
            .fold(0, |acc, (&value, domain)| acc * domain + value)
    }
}

// ---------------------------------------------------------------------
// The n-process abstraction.
// ---------------------------------------------------------------------

/// Variable handles of the n-process model, plus the permutation tables
/// behind `ord`.
#[derive(Debug, Clone)]
struct VarsN {
    n: usize,
    m: Vec<VarRef>,
    /// `c[i][j]`, `i ≠ j`: single-slot channel i→j.
    c: Vec<Vec<Option<VarRef>>>,
    /// `k[i][j]`, `i ≠ j`: "i's information confirms its request
    /// precedes j's".
    k: Vec<Vec<Option<VarRef>>>,
    /// Index into the lexicographic permutation list of `0..n`.
    ord: VarRef,
    /// `earlier[p][i * n + j]`: does i precede j in permutation p?
    earlier: Vec<Vec<bool>>,
    /// `move_back[p][i]`: permutation index after moving i to the back.
    move_back: Vec<Vec<usize>>,
}

/// All permutations of `0..n` in lexicographic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    // Lexicographic successor loop.
    loop {
        result.push(items.clone());
        let Some(pivot) = items.windows(2).rposition(|w| w[0] < w[1]) else {
            break;
        };
        let swap = items.iter().rposition(|&x| x > items[pivot]).unwrap();
        items.swap(pivot, swap);
        items[pivot + 1..].reverse();
    }
    result
}

/// Declares the n-process variables through any DSL's `var` entry point
/// (the packed and reference compilers share declaration order, so packed
/// state indices and reference state indices coincide).
fn declare_n_with(var: &mut dyn FnMut(String, usize) -> VarRef, n: usize) -> VarsN {
    let m = (0..n).map(|i| var(format!("m{i}"), 3)).collect();
    let pair_grid = |var: &mut dyn FnMut(String, usize) -> VarRef,
                     prefix: &str,
                     domain: usize|
     -> Vec<Vec<Option<VarRef>>> {
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| (i != j).then(|| var(format!("{prefix}{i}{j}"), domain)))
                    .collect()
            })
            .collect()
    };
    let c = pair_grid(var, "c", 3);
    let k = pair_grid(var, "k", 2);
    let perms = permutations(n);
    let ord = var("ord".to_string(), perms.len());
    let index_of: HashMap<Vec<usize>, usize> = perms.iter().cloned().zip(0..perms.len()).collect();
    let earlier = perms
        .iter()
        .map(|perm| {
            let mut pos = vec![0usize; n];
            for (at, &process) in perm.iter().enumerate() {
                pos[process] = at;
            }
            let mut table = vec![false; n * n];
            for i in 0..n {
                for j in 0..n {
                    table[i * n + j] = pos[i] < pos[j];
                }
            }
            table
        })
        .collect();
    let move_back = perms
        .iter()
        .map(|perm| {
            (0..n)
                .map(|i| {
                    let mut moved: Vec<usize> = perm.iter().copied().filter(|&p| p != i).collect();
                    moved.push(i);
                    index_of[&moved]
                })
                .collect()
        })
        .collect();
    VarsN {
        n,
        m,
        c,
        k,
        ord,
        earlier,
        move_back,
    }
}

fn declare_n(program: &mut Program, n: usize) -> VarsN {
    declare_n_with(&mut |name, domain| program.var(name, domain), n)
}

fn declare_n_reference(program: &mut RefProgram, n: usize) -> VarsN {
    declare_n_with(&mut |name, domain| program.var(name, domain), n)
}

fn protocol_commands_n(program: &mut Program, v: &VarsN, with_wrapper: bool) {
    let n = v.n;
    for i in 0..n {
        // Request CS: t → h, broadcast requests, forget stale beliefs,
        // move self to the back of the ground-truth order, void replies
        // still in flight to us (they approved an older request).
        let mi = v.m[i];
        let ord = v.ord;
        let outgoing: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.c[i][j].unwrap())
            .collect();
        let incoming: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.c[j][i].unwrap())
            .collect();
        let beliefs: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.k[i][j].unwrap())
            .collect();
        let move_back: Vec<usize> = v.move_back.iter().map(|row| row[i]).collect();
        program.command(
            format!("request{i}"),
            move |s: &State<'_>| s.get(mi) == THINKING,
            move |s: &mut State<'_>| {
                s.set(mi, HUNGRY);
                for &slot in &outgoing {
                    s.set(slot, REQUEST);
                }
                for &belief in &beliefs {
                    s.set(belief, 0);
                }
                for &slot in &incoming {
                    if s.get(slot) == REPLY {
                        s.set(slot, EMPTY);
                    }
                }
                s.set(ord, move_back[s.get(ord)]);
            },
        );
        for j in 0..n {
            if j == i {
                continue;
            }
            let cji = v.c[j][i].unwrap();
            let cij = v.c[i][j].unwrap();
            let kij = v.k[i][j].unwrap();
            let i_earlier: Vec<bool> = v.earlier.iter().map(|t| t[i * n + j]).collect();
            // Receive request from j and reply — enabled only when i
            // actually replies. Eating, or hungry with the earlier
            // request, leaves the request *pending in the slot*: that is
            // this model's deferred set (no d bits). A released process
            // answers pending requests through this same command.
            {
                let i_earlier = i_earlier.clone();
                program.command(
                    format!("recv_request{i}_{j}"),
                    move |s: &State<'_>| {
                        s.get(cji) == REQUEST
                            && s.get(mi) != EATING
                            && !(s.get(mi) == HUNGRY && i_earlier[s.get(ord)])
                    },
                    move |s: &mut State<'_>| {
                        s.set(cji, EMPTY);
                        s.set(cij, REPLY);
                    },
                );
            }
            // Observe a deferred request without consuming it: an
            // earlier-hungry process learns from j's later request that
            // its own precedes (RA: a later timestamp confirms mine).
            program.command(
                format!("observe_request{i}_{j}"),
                move |s: &State<'_>| {
                    s.get(cji) == REQUEST
                        && s.get(mi) == HUNGRY
                        && i_earlier[s.get(ord)]
                        && s.get(kij) == 0
                },
                move |s: &mut State<'_>| s.set(kij, 1),
            );
            // Receive reply from j: while hungry it confirms precedence.
            program.command(
                format!("recv_reply{i}_{j}"),
                move |s: &State<'_>| s.get(cji) == REPLY,
                move |s: &mut State<'_>| {
                    s.set(cji, EMPTY);
                    if s.get(mi) == HUNGRY {
                        s.set(kij, 1);
                    }
                },
            );
            if with_wrapper {
                // The graybox wrapper, per pair: while hungry without
                // confirmed precedence over j, re-send the request (never
                // clobbering a reply in flight).
                program.command(
                    format!("wrapper{i}_{j}"),
                    move |s: &State<'_>| {
                        s.get(mi) == HUNGRY && s.get(kij) == 0 && s.get(cij) != REPLY
                    },
                    move |s: &mut State<'_>| s.set(cij, REQUEST),
                );
            }
        }
        // Grant CS once every pairwise precedence is confirmed.
        let beliefs: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.k[i][j].unwrap())
            .collect();
        {
            let beliefs = beliefs.clone();
            program.command(
                format!("enter{i}"),
                move |s: &State<'_>| s.get(mi) == HUNGRY && beliefs.iter().all(|&b| s.get(b) == 1),
                move |s: &mut State<'_>| s.set(mi, EATING),
            );
        }
        // Release CS: back to thinking, forget beliefs; requests deferred
        // while eating stay pending and are now answered by the
        // re-enabled recv_request commands.
        program.command(
            format!("release{i}"),
            move |s: &State<'_>| s.get(mi) == EATING,
            move |s: &mut State<'_>| {
                s.set(mi, THINKING);
                for &belief in &beliefs {
                    s.set(belief, 0);
                }
            },
        );
    }
}

/// The reference-DSL twin of [`protocol_commands_n`]: identical commands
/// in identical order, written against the retained decode/encode
/// compiler, so the two pipelines can be differential-tested (and timed
/// against each other) on the multi-million-state 3-process model.
fn protocol_commands_n_reference(program: &mut RefProgram, v: &VarsN, with_wrapper: bool) {
    let n = v.n;
    for i in 0..n {
        let mi = v.m[i];
        let ord = v.ord;
        let outgoing: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.c[i][j].unwrap())
            .collect();
        let incoming: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.c[j][i].unwrap())
            .collect();
        let beliefs: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.k[i][j].unwrap())
            .collect();
        let move_back: Vec<usize> = v.move_back.iter().map(|row| row[i]).collect();
        program.command(
            format!("request{i}"),
            move |s: &Valuation| s[mi] == THINKING,
            move |s: &mut Valuation| {
                s[mi] = HUNGRY;
                for &slot in &outgoing {
                    s[slot] = REQUEST;
                }
                for &belief in &beliefs {
                    s[belief] = 0;
                }
                for &slot in &incoming {
                    if s[slot] == REPLY {
                        s[slot] = EMPTY;
                    }
                }
                s[ord] = move_back[s[ord]];
            },
        );
        for j in 0..n {
            if j == i {
                continue;
            }
            let cji = v.c[j][i].unwrap();
            let cij = v.c[i][j].unwrap();
            let kij = v.k[i][j].unwrap();
            let i_earlier: Vec<bool> = v.earlier.iter().map(|t| t[i * n + j]).collect();
            {
                let i_earlier = i_earlier.clone();
                program.command(
                    format!("recv_request{i}_{j}"),
                    move |s: &Valuation| {
                        s[cji] == REQUEST
                            && s[mi] != EATING
                            && !(s[mi] == HUNGRY && i_earlier[s[ord]])
                    },
                    move |s: &mut Valuation| {
                        s[cji] = EMPTY;
                        s[cij] = REPLY;
                    },
                );
            }
            program.command(
                format!("observe_request{i}_{j}"),
                move |s: &Valuation| {
                    s[cji] == REQUEST && s[mi] == HUNGRY && i_earlier[s[ord]] && s[kij] == 0
                },
                move |s: &mut Valuation| s[kij] = 1,
            );
            program.command(
                format!("recv_reply{i}_{j}"),
                move |s: &Valuation| s[cji] == REPLY,
                move |s: &mut Valuation| {
                    s[cji] = EMPTY;
                    if s[mi] == HUNGRY {
                        s[kij] = 1;
                    }
                },
            );
            if with_wrapper {
                program.command(
                    format!("wrapper{i}_{j}"),
                    move |s: &Valuation| s[mi] == HUNGRY && s[kij] == 0 && s[cij] != REPLY,
                    move |s: &mut Valuation| s[cij] = REQUEST,
                );
            }
        }
        let beliefs: Vec<VarRef> = (0..n)
            .filter(|&j| j != i)
            .map(|j| v.k[i][j].unwrap())
            .collect();
        {
            let beliefs = beliefs.clone();
            program.command(
                format!("enter{i}"),
                move |s: &Valuation| s[mi] == HUNGRY && beliefs.iter().all(|&b| s[b] == 1),
                move |s: &mut Valuation| s[mi] = EATING,
            );
        }
        program.command(
            format!("release{i}"),
            move |s: &Valuation| s[mi] == EATING,
            move |s: &mut Valuation| {
                s[mi] = THINKING;
                for &belief in &beliefs {
                    s[belief] = 0;
                }
            },
        );
    }
}

/// The IR twin of [`protocol_commands_n`]: identical commands in
/// identical order, expressed as [`IrCommand`] syntax trees instead of
/// closures. This is what makes the model *statically analyzable* — the
/// `graybox-analyze` passes certify locality (Lemmas 2–3) and the
/// wrapper's graybox admissibility from these trees without enumerating
/// a single state — while compiling to exactly the same systems (the
/// differential tests assert `==` at n = 2 and n = 3).
fn protocol_commands_n_ir(program: &mut Program, v: &VarsN, with_wrapper: bool) {
    let n = v.n;
    // `i_earlier[ord]` as IR: a 0/1 table lookup over the permutation
    // index, compared against 1.
    let earlier_cond = |v: &VarsN, i: usize, j: usize| -> Cond {
        let table: Vec<usize> = v
            .earlier
            .iter()
            .map(|t| usize::from(t[i * n + j]))
            .collect();
        Expr::var(v.ord).table(table).eq(Expr::int(1))
    };
    for i in 0..n {
        let mi = v.m[i];
        let others = || (0..n).filter(move |&j| j != i);
        // Request CS: t → h, broadcast requests, forget stale beliefs,
        // void replies in flight to us, move self to the back of the
        // ground-truth order.
        let mut body = vec![Stmt::assign(mi, Expr::int(HUNGRY))];
        for j in others() {
            body.push(Stmt::assign(v.c[i][j].unwrap(), Expr::int(REQUEST)));
        }
        for j in others() {
            body.push(Stmt::assign(v.k[i][j].unwrap(), Expr::int(0)));
        }
        for j in others() {
            let slot = v.c[j][i].unwrap();
            body.push(Stmt::when(
                Expr::var(slot).eq(Expr::int(REPLY)),
                vec![Stmt::assign(slot, Expr::int(EMPTY))],
            ));
        }
        let move_back: Vec<usize> = v.move_back.iter().map(|row| row[i]).collect();
        body.push(Stmt::assign(v.ord, Expr::var(v.ord).table(move_back)));
        program.command_ir(IrCommand::new(
            format!("request{i}"),
            Expr::var(mi).eq(Expr::int(THINKING)),
            body,
        ));
        for j in others() {
            let cji = v.c[j][i].unwrap();
            let cij = v.c[i][j].unwrap();
            let kij = v.k[i][j].unwrap();
            // Receive request from j and reply — enabled only when i
            // actually replies (pending requests are the deferred set).
            program.command_ir(IrCommand::new(
                format!("recv_request{i}_{j}"),
                Expr::var(cji)
                    .eq(Expr::int(REQUEST))
                    .and(Expr::var(mi).ne(Expr::int(EATING)))
                    .and(
                        Expr::var(mi)
                            .eq(Expr::int(HUNGRY))
                            .and(earlier_cond(v, i, j))
                            .not(),
                    ),
                vec![
                    Stmt::assign(cji, Expr::int(EMPTY)),
                    Stmt::assign(cij, Expr::int(REPLY)),
                ],
            ));
            // Observe a deferred request without consuming it.
            program.command_ir(IrCommand::new(
                format!("observe_request{i}_{j}"),
                Expr::var(cji)
                    .eq(Expr::int(REQUEST))
                    .and(Expr::var(mi).eq(Expr::int(HUNGRY)))
                    .and(earlier_cond(v, i, j))
                    .and(Expr::var(kij).eq(Expr::int(0))),
                vec![Stmt::assign(kij, Expr::int(1))],
            ));
            // Receive reply from j: while hungry it confirms precedence.
            program.command_ir(IrCommand::new(
                format!("recv_reply{i}_{j}"),
                Expr::var(cji).eq(Expr::int(REPLY)),
                vec![
                    Stmt::assign(cji, Expr::int(EMPTY)),
                    Stmt::when(
                        Expr::var(mi).eq(Expr::int(HUNGRY)),
                        vec![Stmt::assign(kij, Expr::int(1))],
                    ),
                ],
            ));
            if with_wrapper {
                // The graybox wrapper, per pair. Note what its syntax
                // tree *cannot* say: it never mentions `ord` (ground
                // truth) — the wrapper-footprint pass certifies this.
                program.command_ir(IrCommand::new(
                    format!("wrapper{i}_{j}"),
                    Expr::var(mi)
                        .eq(Expr::int(HUNGRY))
                        .and(Expr::var(kij).eq(Expr::int(0)))
                        .and(Expr::var(cij).ne(Expr::int(REPLY))),
                    vec![Stmt::assign(cij, Expr::int(REQUEST))],
                ));
            }
        }
        // Grant CS once every pairwise precedence is confirmed.
        let all_confirmed = others().fold(Expr::var(mi).eq(Expr::int(HUNGRY)), |acc, j| {
            acc.and(Expr::var(v.k[i][j].unwrap()).eq(Expr::int(1)))
        });
        program.command_ir(IrCommand::new(
            format!("enter{i}"),
            all_confirmed,
            vec![Stmt::assign(mi, Expr::int(EATING))],
        ));
        // Release CS: back to thinking, forget beliefs.
        let mut body = vec![Stmt::assign(mi, Expr::int(THINKING))];
        for j in others() {
            body.push(Stmt::assign(v.k[i][j].unwrap(), Expr::int(0)));
        }
        program.command_ir(IrCommand::new(
            format!("release{i}"),
            Expr::var(mi).eq(Expr::int(EATING)),
            body,
        ));
    }
}

/// The structural role of one variable of the n-process model, in
/// declaration order — the analysis-agnostic metadata the static passes
/// consume (ownership for the locality check, spec-visibility for the
/// wrapper-footprint check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NprocVarRole {
    /// `m_i`: the mode of process `i` (owned by `i`).
    Mode(usize),
    /// `c_ij`: the single-slot channel from `from` to `to` — writable by
    /// both endpoints (the sender sends, the receiver consumes).
    Channel {
        /// Sending process.
        from: usize,
        /// Receiving process.
        to: usize,
    },
    /// `k_ij`: `owner`'s belief that its request precedes `about`'s
    /// (owned by `owner`).
    Belief {
        /// The believing process.
        owner: usize,
        /// The process the belief is about.
        about: usize,
    },
    /// `ord`: the ground-truth request order — an auxiliary
    /// (specification-level ghost) variable no single process owns. The
    /// protocol may consult it (the abstraction of timestamp
    /// comparison), but a graybox wrapper must not: `Lspec` does not
    /// expose ground truth.
    Order,
}

/// Structural metadata of the n-process model: per-variable roles and
/// per-command owning processes, in declaration order. The shape is what
/// `graybox-lint` feeds to the locality / wrapper-footprint /
/// interference passes.
#[derive(Debug, Clone)]
pub struct NprocShape {
    /// Number of processes.
    pub n: usize,
    /// Role of each variable, in declaration order.
    pub var_roles: Vec<NprocVarRole>,
    /// Owning process of each command, in declaration order.
    pub command_process: Vec<usize>,
    /// Whether each command is a wrapper command.
    pub command_is_wrapper: Vec<bool>,
}

/// The shape of [`program_nproc_ir`]`(n, with_wrapper)`. Variable and
/// command indices match that program's declaration order exactly (a
/// test asserts the counts line up).
pub fn nproc_shape(n: usize, with_wrapper: bool) -> NprocShape {
    let mut var_roles: Vec<NprocVarRole> = (0..n).map(NprocVarRole::Mode).collect();
    for from in 0..n {
        for to in 0..n {
            if from != to {
                var_roles.push(NprocVarRole::Channel { from, to });
            }
        }
    }
    for owner in 0..n {
        for about in 0..n {
            if owner != about {
                var_roles.push(NprocVarRole::Belief { owner, about });
            }
        }
    }
    var_roles.push(NprocVarRole::Order);

    let mut command_process = Vec::new();
    let mut command_is_wrapper = Vec::new();
    for i in 0..n {
        let mut push = |process: usize, wrapper: bool| {
            command_process.push(process);
            command_is_wrapper.push(wrapper);
        };
        push(i, false); // request{i}
        for _j in (0..n).filter(|&j| j != i) {
            push(i, false); // recv_request{i}_{j}
            push(i, false); // observe_request{i}_{j}
            push(i, false); // recv_reply{i}_{j}
            if with_wrapper {
                push(i, true); // wrapper{i}_{j}
            }
        }
        push(i, false); // enter{i}
        push(i, false); // release{i}
    }
    NprocShape {
        n,
        var_roles,
        command_process,
        command_is_wrapper,
    }
}

/// The IR twin of [`program_nproc`]: the same model assembled from
/// [`IrCommand`] syntax trees, so the static passes can inspect it. Use
/// [`nproc_shape`] for the matching ownership metadata.
pub fn program_nproc_ir(
    n: usize,
    with_wrapper: bool,
) -> (Program, impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync) {
    let mut program = Program::new();
    let vars = declare_n(&mut program, n);
    protocol_commands_n_ir(&mut program, &vars, with_wrapper);
    program.max_states(nproc_max_states(n));
    (program, is_init_n(vars))
}

/// The packed-state cap for the n-process model: the tier-1 cap
/// (`1 << 26`) through `n = 3` — those spaces are swept in full — and
/// the exact domain product beyond, where only **quotient fragments**
/// are ever interned ([`AbstractTmeN::reachable_check`]) but the layout
/// must still admit the full product. At `n = 5` the product
/// (≈ 1.07 × 10²⁰) no longer fits the packed `u64` word, so the cap
/// saturates and compilation reports [`GclError::TooManyStates`] — that
/// is the representation boundary, not a tuning choice.
fn nproc_max_states(n: usize) -> usize {
    if n <= 3 {
        return 1 << 26;
    }
    let mut product: u128 = 1;
    for _ in 0..n + n * (n - 1) {
        product = product.saturating_mul(3);
    }
    for _ in 0..n * (n - 1) {
        product = product.saturating_mul(2);
    }
    for f in 2..=n {
        product = product.saturating_mul(f as u128);
    }
    usize::try_from(product).unwrap_or(usize::MAX)
}

/// The full process-relabeling symmetry group of
/// [`program_nproc`]`(n, with_wrapper)` and its twins: one
/// [`SymmetryElement`] per permutation π of `0..n` (identity first,
/// lexicographic thereafter), relabeling modes `m_i → m_{π(i)}`,
/// channels `c_ij → c_{π(i)π(j)}`, beliefs `k_ij → k_{π(i)π(j)}` and the
/// commands likewise, and acting on `ord` **by value**: the stored
/// ground-truth order is relabeled elementwise
/// (`perms[p] ↦ π ∘ perms[p]`). `SymmetrySpec::validate` confirms
/// equivariance against the actual program; the reduced checks below
/// rely on it.
///
/// # Panics
///
/// Panics if the group tables cannot be built — impossible for
/// `2 ≤ n ≤ 8` (the `u16` element bound holds up to `8! = 40 320`).
pub fn nproc_symmetry(n: usize, with_wrapper: bool) -> SymmetrySpec {
    assert!(n >= 2, "the abstraction needs at least two processes");
    let perms = permutations(n);
    let index_of: HashMap<Vec<usize>, usize> = perms.iter().cloned().zip(0..perms.len()).collect();
    let num_vars = n + 2 * n * (n - 1) + 1;
    let ord_at = num_vars - 1;
    let local = |i: usize, j: usize| if j < i { j } else { j - 1 };
    let idx_c = |i: usize, j: usize| n + i * (n - 1) + local(i, j);
    let idx_k = |i: usize, j: usize| n + n * (n - 1) + i * (n - 1) + local(i, j);

    // Commands per process, in declaration order: request, then per
    // peer (ascending) recv_request / observe_request / recv_reply
    // [/ wrapper], then enter, release.
    let per_pair = 3 + usize::from(with_wrapper);
    let per_proc = 1 + (n - 1) * per_pair + 2;
    let num_commands = n * per_proc;

    let elements: Vec<SymmetryElement> = perms
        .iter()
        .map(|pi| {
            let mut var_perm = vec![0usize; num_vars];
            for i in 0..n {
                var_perm[i] = pi[i];
                for j in (0..n).filter(|&j| j != i) {
                    var_perm[idx_c(i, j)] = idx_c(pi[i], pi[j]);
                    var_perm[idx_k(i, j)] = idx_k(pi[i], pi[j]);
                }
            }
            var_perm[ord_at] = ord_at;

            let mut value_maps: Vec<Option<Vec<usize>>> = vec![None; num_vars];
            value_maps[ord_at] = Some(
                perms
                    .iter()
                    .map(|order| {
                        let relabeled: Vec<usize> = order.iter().map(|&p| pi[p]).collect();
                        index_of[&relabeled]
                    })
                    .collect(),
            );

            let mut cmd_perm = vec![0usize; num_commands];
            for i in 0..n {
                let from = i * per_proc;
                let to = pi[i] * per_proc;
                cmd_perm[from] = to; // request
                cmd_perm[from + per_proc - 2] = to + per_proc - 2; // enter
                cmd_perm[from + per_proc - 1] = to + per_proc - 1; // release
                for j in (0..n).filter(|&j| j != i) {
                    let src = from + 1 + per_pair * local(i, j);
                    let dst = to + 1 + per_pair * local(pi[i], pi[j]);
                    for k in 0..per_pair {
                        cmd_perm[src + k] = dst + k;
                    }
                }
            }
            SymmetryElement {
                var_perm,
                value_maps,
                cmd_perm,
            }
        })
        .collect();
    SymmetrySpec::new(&elements).expect("process relabelings form a group")
}

fn is_init_n(v: VarsN) -> impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync {
    move |s| {
        (0..v.n).all(|i| {
            s.get(v.m[i]) == THINKING
                && (0..v.n)
                    .filter(|&j| j != i)
                    .all(|j| s.get(v.c[i][j].unwrap()) == EMPTY && s.get(v.k[i][j].unwrap()) == 0)
        }) && s.get(v.ord) == 0
    }
}

/// Assembles the n-process model as a packed [`Program`] plus its initial
/// predicate — the unit the benchmarks time.
pub fn program_nproc(
    n: usize,
    with_wrapper: bool,
) -> (Program, impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync) {
    let mut program = Program::new();
    let vars = declare_n(&mut program, n);
    protocol_commands_n(&mut program, &vars, with_wrapper);
    program.max_states(nproc_max_states(n));
    (program, is_init_n(vars))
}

/// The reference-DSL twin of [`program_nproc`].
pub fn program_nproc_reference(
    n: usize,
    with_wrapper: bool,
) -> (RefProgram, impl Fn(&Valuation) -> bool) {
    let mut program = RefProgram::new();
    let vars = declare_n_reference(&mut program, n);
    protocol_commands_n_reference(&mut program, &vars, with_wrapper);
    program.max_states(nproc_max_states(n));
    (program, move |s: &Valuation| {
        (0..vars.n).all(|i| {
            s[vars.m[i]] == THINKING
                && (0..vars.n)
                    .filter(|&j| j != i)
                    .all(|j| s[vars.c[i][j].unwrap()] == EMPTY && s[vars.k[i][j].unwrap()] == 0)
        }) && s[vars.ord] == 0
    })
}

/// The compiled n-process abstraction: two packed [`Program`]s (without
/// and with the wrapper) checked by the streaming pipeline — nothing is
/// materialized until [`check`](AbstractTmeN::check) runs.
#[derive(Debug)]
pub struct AbstractTmeN {
    n: usize,
    unwrapped: Program,
    wrapped: Program,
    vars: VarsN,
    domains: Vec<usize>,
}

/// The verdicts of one exhaustive n-process check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmeVerdicts {
    /// Size of the full state space both checks swept.
    pub num_states: usize,
    /// Number of legitimate (init-reachable, wrapper included) states.
    pub num_legitimate: usize,
    /// ME1 over legitimate behaviour: never two processes eating.
    pub me1: bool,
    /// Is the unwrapped protocol stabilizing? (Expected: no.)
    pub unwrapped_stabilizes: bool,
    /// Is the wrapped composition stabilizing under weak fairness?
    pub wrapped_stabilizes: bool,
    /// The generalized §4 deadlock state (all hungry, channels empty,
    /// no beliefs).
    pub deadlock_state: usize,
    /// Is the deadlock quiescent in the unwrapped protocol?
    pub deadlock_quiescent: bool,
    /// Is the deadlock outside legitimate behaviour?
    pub deadlock_illegitimate: bool,
}

impl TmeVerdicts {
    /// True when every verdict is as the paper predicts.
    pub fn as_predicted(&self) -> bool {
        self.me1
            && !self.unwrapped_stabilizes
            && self.wrapped_stabilizes
            && self.deadlock_quiescent
            && self.deadlock_illegitimate
    }
}

/// Builds the n-process abstraction (`n ≥ 2`). `build_n(3)` is the
/// 7 558 272-state workload T9 checks at full scale; `build_n(2)` is a
/// smaller cousin of [`build`] (pairwise beliefs, no deferred bits) used
/// to cross-validate the streaming checker against the materialized one.
///
/// # Errors
///
/// Returns [`GclError`] if compilation fails — in particular
/// [`GclError::TooManyStates`] when `n` pushes the domain product past
/// what a packed check can hold.
pub fn build_n(n: usize) -> Result<AbstractTmeN, GclError> {
    assert!(n >= 2, "the abstraction needs at least two processes");
    let mut unwrapped = Program::new();
    let vars = declare_n(&mut unwrapped, n);
    protocol_commands_n(&mut unwrapped, &vars, false);
    unwrapped.max_states(nproc_max_states(n));

    let mut wrapped = Program::new();
    let wvars = declare_n(&mut wrapped, n);
    protocol_commands_n(&mut wrapped, &wvars, true);
    wrapped.max_states(nproc_max_states(n));

    let mut domains = vec![3usize; n];
    domains.extend(std::iter::repeat_n(3, n * (n - 1)));
    domains.extend(std::iter::repeat_n(2, n * (n - 1)));
    domains.push(vars.earlier.len());
    // Fail early (and identically for both programs) on oversize n.
    unwrapped.state_space()?;
    Ok(AbstractTmeN {
        n,
        unwrapped,
        wrapped,
        vars,
        domains,
    })
}

impl AbstractTmeN {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of global states.
    pub fn num_states(&self) -> usize {
        self.domains.iter().product()
    }

    /// The unwrapped protocol program (for benchmarks).
    pub fn unwrapped_program(&self) -> &Program {
        &self.unwrapped
    }

    /// The wrapped protocol program (for benchmarks).
    pub fn wrapped_program(&self) -> &Program {
        &self.wrapped
    }

    fn init_pred(&self) -> impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync + '_ {
        let v = &self.vars;
        move |s| {
            (0..v.n).all(|i| {
                s.get(v.m[i]) == THINKING
                    && (0..v.n).filter(|&j| j != i).all(|j| {
                        s.get(v.c[i][j].unwrap()) == EMPTY && s.get(v.k[i][j].unwrap()) == 0
                    })
            }) && s.get(v.ord) == 0
        }
    }

    /// Encodes the generalized §4 deadlock: all hungry, channels empty,
    /// no beliefs, identity order.
    pub fn deadlock_state(&self) -> usize {
        let mut values = vec![0usize; self.domains.len()];
        values[..self.n].fill(HUNGRY);
        values
            .iter()
            .zip(&self.domains)
            .rev()
            .fold(0, |acc, (&value, &domain)| acc * domain + value)
    }

    /// Decodes a packed state into values in declaration order
    /// (`m0..m{n-1}`, channels, beliefs, `ord`).
    pub fn decode(&self, mut state: usize) -> Vec<usize> {
        self.domains
            .iter()
            .map(|&domain| {
                let value = state % domain;
                state /= domain;
                value
            })
            .collect()
    }

    /// Runs the exhaustive check: two streaming
    /// [`Program::fair_self_check`] sweeps (unwrapped, wrapped), ME1 over
    /// the legitimate states, and the deadlock analysis. At `n = 3` this
    /// is the multi-million-state workload; nothing per-command is ever
    /// materialized.
    ///
    /// # Errors
    ///
    /// Returns [`GclError`] if compilation fails (it cannot, absent bugs).
    pub fn check(&self) -> Result<TmeVerdicts, GclError> {
        self.check_with(None)
    }

    /// [`check`](Self::check) with an explicit worker count for the two
    /// [`Program::fair_self_check_on`] runs (`workers <= 1` is fully
    /// serial). The verdicts are identical for every worker count — the
    /// parallel differential suite asserts it.
    ///
    /// # Errors
    ///
    /// Returns [`GclError`] if compilation fails (it cannot, absent bugs).
    pub fn check_on(&self, workers: usize) -> Result<TmeVerdicts, GclError> {
        self.check_with(Some(workers))
    }

    fn check_with(&self, workers: Option<usize>) -> Result<TmeVerdicts, GclError> {
        let (unwrapped_report, wrapped_report) = match workers {
            Some(workers) => (
                self.unwrapped
                    .fair_self_check_on(workers, self.init_pred())?,
                self.wrapped.fair_self_check_on(workers, self.init_pred())?,
            ),
            None => (
                self.unwrapped.fair_self_check(self.init_pred())?,
                self.wrapped.fair_self_check(self.init_pred())?,
            ),
        };

        let me1 = wrapped_report.legitimate.iter().all(|state| {
            let values = self.decode(state);
            values[..self.n].iter().filter(|&&m| m == EATING).count() <= 1
        });

        let deadlock = self.deadlock_state();
        let deadlock_quiescent = self.unwrapped.step(deadlock)? == vec![deadlock];
        // Legitimacy (init-reachability) is identical for the unwrapped
        // and wrapped programs only up to the wrapper's extra moves; the
        // convergence target is the wrapped (Lspec stand-in) behaviour,
        // so the deadlock must be outside *that*.
        let deadlock_illegitimate = !wrapped_report.legitimate.contains(deadlock);

        Ok(TmeVerdicts {
            num_states: wrapped_report.num_states,
            num_legitimate: wrapped_report.num_legitimate(),
            me1,
            unwrapped_stabilizes: unwrapped_report.holds(),
            wrapped_stabilizes: wrapped_report.holds(),
            deadlock_state: deadlock,
            deadlock_quiescent,
            deadlock_illegitimate,
        })
    }

    /// The initial predicate with the `ord = 0` pin dropped: all
    /// thinking, channels empty, no beliefs, *any* ground-truth order.
    /// This is exactly the orbit closure of [`init_pred`](Self::init_pred)
    /// under [`nproc_symmetry`] (relabeling reaches every `ord` value
    /// from the identity), which the symmetry-reduced sweeps require.
    fn symmetric_init_pred(&self) -> impl for<'a, 'b> Fn(&'a State<'b>) -> bool + Sync + '_ {
        let v = &self.vars;
        move |s| {
            (0..v.n).all(|i| {
                s.get(v.m[i]) == THINKING
                    && (0..v.n).filter(|&j| j != i).all(|j| {
                        s.get(v.c[i][j].unwrap()) == EMPTY && s.get(v.k[i][j].unwrap()) == 0
                    })
            })
        }
    }

    /// [`check`](Self::check) on the symmetry quotient: the identical
    /// [`TmeVerdicts`] (the differential gate asserts bit-equality at
    /// `n = 2` and `n = 3`), interning only one representative per
    /// process-relabeling orbit — `n!`-fold fewer states when no state
    /// has a non-trivial stabilizer, which holds here because the `ord`
    /// digit is moved by every non-identity relabeling.
    ///
    /// # Errors
    ///
    /// Returns [`GclError`] if compilation fails (it cannot, absent bugs).
    pub fn reduced_check(&self) -> Result<TmeReducedVerdicts, GclError> {
        self.reduced_check_with(None)
    }

    /// [`reduced_check`](Self::reduced_check) with an explicit worker
    /// count; the report is identical at every count.
    ///
    /// # Errors
    ///
    /// Returns [`GclError`] if compilation fails (it cannot, absent bugs).
    pub fn reduced_check_on(&self, workers: usize) -> Result<TmeReducedVerdicts, GclError> {
        self.reduced_check_with(Some(workers))
    }

    fn reduced_check_with(&self, workers: Option<usize>) -> Result<TmeReducedVerdicts, GclError> {
        let sym_unwrapped = nproc_symmetry(self.n, false);
        let sym_wrapped = nproc_symmetry(self.n, true);
        let init = self.symmetric_init_pred();
        let (unwrapped_report, wrapped_report) = match workers {
            Some(workers) => (
                self.unwrapped
                    .fair_self_check_sym_on(workers, &sym_unwrapped, &init)?,
                self.wrapped
                    .fair_self_check_sym_on(workers, &sym_wrapped, &init)?,
            ),
            None => (
                self.unwrapped.fair_self_check_sym(&sym_unwrapped, &init)?,
                self.wrapped.fair_self_check_sym(&sym_wrapped, &init)?,
            ),
        };

        // ME1 is orbit-invariant (relabeling permutes the eating count's
        // summands), so checking canonical representatives covers every
        // legitimate state.
        let me1 = wrapped_report.legitimate.iter().all(|id| {
            let values = self.decode(word_index(wrapped_report.words[id]));
            values[..self.n].iter().filter(|&&m| m == EATING).count() <= 1
        });

        let deadlock = self.deadlock_state();
        let deadlock_quiescent = self.unwrapped.step(deadlock)? == vec![deadlock];
        let canon_deadlock = self.wrapped.canonicalize(&sym_wrapped, deadlock)? as u64;
        let deadlock_illegitimate = !wrapped_report
            .canonical_id(canon_deadlock)
            .is_some_and(|id| wrapped_report.legitimate.contains(id));

        Ok(TmeReducedVerdicts {
            verdicts: TmeVerdicts {
                num_states: wrapped_report.num_states,
                num_legitimate: wrapped_report.num_legitimate_full,
                me1,
                unwrapped_stabilizes: unwrapped_report.holds(),
                wrapped_stabilizes: wrapped_report.holds(),
                deadlock_state: deadlock,
                deadlock_quiescent,
                deadlock_illegitimate,
            },
            num_canonical: wrapped_report.num_canonical(),
            group_order: sym_wrapped.order(),
        })
    }

    /// The `n ≥ 4` verdict: BFS over canonical representatives from the
    /// designated initial state, for products far too large to sweep
    /// (`n = 4` is ≈ 4.2 × 10¹² raw states). Unlike
    /// [`check`](Self::check) this certifies the **init-reachable**
    /// fragment — ME1 over legitimate behaviour, the §4 deadlock's
    /// quiescence and illegitimacy, and the wrapped protocol's recovery
    /// distance from the deadlock back into legitimate behaviour — not
    /// convergence from every corrupted state. `cap` bounds the interned
    /// canonical states ([`GclError::TooManyStates`] beyond it).
    ///
    /// # Errors
    ///
    /// Returns [`GclError`] if compilation fails or the quotient
    /// exploration exceeds `cap`.
    pub fn reachable_check(&self, cap: usize) -> Result<TmeReachableVerdicts, GclError> {
        self.reachable_check_with(None, cap)
    }

    /// [`reachable_check`](Self::reachable_check) with an explicit
    /// worker count; the report is identical at every count.
    ///
    /// # Errors
    ///
    /// Returns [`GclError`] if compilation fails or the quotient
    /// exploration exceeds `cap`.
    pub fn reachable_check_on(
        &self,
        workers: usize,
        cap: usize,
    ) -> Result<TmeReachableVerdicts, GclError> {
        self.reachable_check_with(Some(workers), cap)
    }

    fn reachable_check_with(
        &self,
        workers: Option<usize>,
        cap: usize,
    ) -> Result<TmeReachableVerdicts, GclError> {
        let sym_wrapped = nproc_symmetry(self.n, true);
        // Packed word 0 is the designated init (all thinking, channels
        // empty, no beliefs, identity order) and is its own canonical
        // form — every relabeling fixes the zero digits and can only
        // raise `ord`.
        let no_target = None::<&fn(u64) -> bool>;
        let legit = match workers {
            Some(workers) => {
                self.wrapped
                    .sym_reach_words_on(workers, &sym_wrapped, &[0], cap, no_target)?
            }
            None => self
                .wrapped
                .sym_reach_words(&sym_wrapped, &[0], cap, no_target)?,
        };
        let me1 = legit.words.iter().all(|&word| {
            let values = self.decode(word_index(word));
            values[..self.n].iter().filter(|&&m| m == EATING).count() <= 1
        });
        let mut legit_sorted = legit.words.clone();
        legit_sorted.sort_unstable();

        let deadlock = self.deadlock_state();
        let deadlock_quiescent = self.unwrapped.step(deadlock)? == vec![deadlock];
        let canon_deadlock = self.wrapped.canonicalize(&sym_wrapped, deadlock)? as u64;
        let deadlock_illegitimate = legit_sorted.binary_search(&canon_deadlock).is_err();

        let target = |w: u64| legit_sorted.binary_search(&w).is_ok();
        let recovery = match workers {
            Some(workers) => self.wrapped.sym_reach_words_on(
                workers,
                &sym_wrapped,
                &[deadlock as u64],
                cap,
                Some(&target),
            )?,
            None => self.wrapped.sym_reach_words(
                &sym_wrapped,
                &[deadlock as u64],
                cap,
                Some(&target),
            )?,
        };

        Ok(TmeReachableVerdicts {
            num_states: self.num_states(),
            num_canonical_legitimate: legit.words.len(),
            me1,
            deadlock_quiescent,
            deadlock_illegitimate,
            recovery_steps: recovery.hit.map(|(_, level)| level),
            group_order: sym_wrapped.order(),
        })
    }
}

/// Packed words index states; the layout cap guarantees they fit.
fn word_index(word: u64) -> usize {
    usize::try_from(word).expect("packed word exceeds usize")
}

/// The verdicts of one symmetry-reduced exhaustive n-process check,
/// with the quotient's size accounting alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmeReducedVerdicts {
    /// The verdicts — field-for-field comparable (and, by the
    /// differential gate, bit-equal) to [`AbstractTmeN::check`]'s.
    pub verdicts: TmeVerdicts,
    /// Interned canonical states in the wrapped sweep (against
    /// [`TmeVerdicts::num_states`] raw states).
    pub num_canonical: usize,
    /// Order of the process-relabeling group (`n!`).
    pub group_order: usize,
}

/// The verdicts of a reachable-quotient n-process check
/// ([`AbstractTmeN::reachable_check`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmeReachableVerdicts {
    /// Size of the raw domain product the quotient stands for.
    pub num_states: usize,
    /// Canonical init-reachable (legitimate) states of the wrapped model.
    pub num_canonical_legitimate: usize,
    /// ME1 over the legitimate fragment.
    pub me1: bool,
    /// Is the §4 deadlock quiescent in the unwrapped protocol?
    pub deadlock_quiescent: bool,
    /// Is the deadlock outside legitimate behaviour?
    pub deadlock_illegitimate: bool,
    /// Wrapped-protocol BFS distance from the deadlock to the first
    /// legitimate state (`None` would refute recovery).
    pub recovery_steps: Option<usize>,
    /// Order of the process-relabeling group (`n!`).
    pub group_order: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_space_is_the_expected_size() {
        let tme = build().unwrap();
        assert_eq!(tme.num_states(), 3 * 3 * 3 * 3 * 2 * 2 * 2 * 2 * 2);
        let legit = tme.num_legitimate();
        assert!(legit > 1 && legit < tme.num_states());
    }

    #[test]
    fn legitimate_behaviour_satisfies_me1() {
        assert!(build().unwrap().me1_invariant());
    }

    #[test]
    fn deadlock_state_decodes_correctly() {
        let tme = build().unwrap();
        let values = tme.protocol.decode(tme.deadlock_state());
        assert_eq!(&values[..4], &[HUNGRY, HUNGRY, EMPTY, EMPTY]);
    }

    #[test]
    fn deadlock_state_is_quiescent_and_illegitimate_unwrapped() {
        let tme = build().unwrap();
        let deadlock = tme.deadlock_state();
        // No protocol command is enabled: the only transition is the
        // compiler's quiescence stutter.
        let succ: Vec<usize> = tme.protocol().successors(deadlock).collect();
        assert_eq!(succ, vec![deadlock]);
        assert!(!tme.protocol().reachable_from_init().contains(deadlock));
        // And it stays illegitimate even for the Lspec stand-in (the
        // wrapped system cannot reach it from Init either).
        assert!(!tme.wrapped().reachable_from_init().contains(deadlock));
    }

    #[test]
    fn unwrapped_protocol_is_not_stabilizing() {
        assert!(!build().unwrap().unwrapped_stabilizes());
    }

    #[test]
    fn wrapped_protocol_is_stabilizing_from_all_states() {
        // The paper's Theorem 8 in miniature, checked exhaustively over
        // every global state (including every possible corruption).
        assert!(build().unwrap().wrapped_stabilizes());
    }

    #[test]
    fn wrapper_breaks_the_deadlock_specifically() {
        let tme = build().unwrap();
        let deadlock = tme.deadlock_state();
        // In the wrapped system the deadlock state has a non-stutter
        // successor (the wrapper re-sends a request).
        let succ: Vec<usize> = tme
            .fair_wrapped
            .union()
            .successors(deadlock)
            .filter(|&next| next != deadlock)
            .collect();
        assert!(!succ.is_empty(), "wrapper enabled no move at the deadlock");
    }

    #[test]
    fn packed_and_reference_compilers_agree_on_the_case_study() {
        // The full cross-validation on the real model (random-program
        // differential tests live in tests/gcl_differential.rs): systems,
        // components, unions, and verdicts must be identical.
        let tme = build().unwrap();
        let (ref_fair_unwrapped, ref_protocol, ref_fair_wrapped, ref_wrapped) =
            build_reference().unwrap();
        assert_eq!(tme.protocol.system(), ref_protocol.system());
        assert_eq!(tme.wrapped.system(), ref_wrapped.system());
        assert_eq!(tme.fair_unwrapped.union(), ref_fair_unwrapped.union());
        assert_eq!(tme.fair_wrapped.union(), ref_fair_wrapped.union());
        assert_eq!(
            tme.fair_unwrapped.components(),
            ref_fair_unwrapped.components()
        );
        assert_eq!(tme.fair_wrapped.components(), ref_fair_wrapped.components());
        assert_eq!(
            tme.unwrapped_stabilizes(),
            ref_fair_unwrapped
                .is_stabilizing_to(&stutter_closure(ref_protocol.system()))
                .holds()
        );
        assert_eq!(
            tme.wrapped_stabilizes(),
            ref_fair_wrapped
                .is_stabilizing_to(&stutter_closure(ref_wrapped.system()))
                .holds()
        );
    }

    #[test]
    fn ir_and_closure_nproc_twins_agree_at_n2() {
        // The acceptance check at n = 2: IR-compiled and closure-compiled
        // TME systems (and their fair compositions) are identical.
        for with_wrapper in [false, true] {
            let (ir, ir_init) = program_nproc_ir(2, with_wrapper);
            let (cl, cl_init) = program_nproc(2, with_wrapper);
            let (ir_fair, ir_compiled) = ir.compile_fair(&ir_init).unwrap();
            let (cl_fair, cl_compiled) = cl.compile_fair(&cl_init).unwrap();
            assert_eq!(
                ir_compiled.system(),
                cl_compiled.system(),
                "wrapper={with_wrapper}"
            );
            assert_eq!(ir_fair.union(), cl_fair.union());
            assert_eq!(ir_fair.components(), cl_fair.components());
            // And the streaming self-check verdict agrees too.
            let ir_report = ir.fair_self_check(&ir_init).unwrap();
            let cl_report = cl.fair_self_check(&cl_init).unwrap();
            assert_eq!(ir_report.holds(), cl_report.holds());
            assert_eq!(ir_report.legitimate, cl_report.legitimate);
        }
    }

    #[test]
    fn ir_and_closure_nproc_twins_agree_at_n3_sampled() {
        // Debug-speed slice of the n = 3 equality: identical successor
        // rows on a deterministic lattice of packed states (the full
        // 7.5M-state sweep is the `--ignored` test below, which CI runs
        // in release).
        for with_wrapper in [false, true] {
            let (ir, _) = program_nproc_ir(3, with_wrapper);
            let (cl, _) = program_nproc(3, with_wrapper);
            let total = ir.state_space().unwrap();
            assert_eq!(total, 7_558_272);
            assert_eq!(total, cl.state_space().unwrap());
            // 997 is coprime to the domain product's factors, so the
            // lattice sprays across every mixed-radix digit.
            for state in (0..total).step_by(997).chain([0, total - 1]) {
                assert_eq!(
                    ir.step(state).unwrap(),
                    cl.step(state).unwrap(),
                    "state {state}, wrapper={with_wrapper}"
                );
            }
        }
    }

    #[test]
    #[ignore = "full 7.5M-state sweep; minutes in debug — CI runs it in release"]
    fn ir_and_closure_nproc_twins_agree_at_n3_full() {
        // The acceptance check at n = 3, exhaustively: every successor
        // row of the full domain product matches between the IR and
        // closure builds of the wrapped model (memory-light: rows are
        // compared streaming, nothing is materialized).
        let (ir, _) = program_nproc_ir(3, true);
        let (cl, _) = program_nproc(3, true);
        let total = ir.state_space().unwrap();
        for state in 0..total {
            assert_eq!(ir.step(state).unwrap(), cl.step(state).unwrap(), "{state}");
        }
    }

    #[test]
    fn nproc_shape_matches_the_ir_program() {
        for (n, with_wrapper) in [(2, false), (2, true), (3, true)] {
            let (program, _) = program_nproc_ir(n, with_wrapper);
            let shape = nproc_shape(n, with_wrapper);
            assert_eq!(shape.var_roles.len(), program.variables().len());
            assert_eq!(shape.command_process.len(), program.num_commands());
            assert_eq!(shape.command_is_wrapper.len(), program.num_commands());
            // Roles line up with declared names, and wrapper flags with
            // command names.
            for (index, (name, _domain)) in program.variables().enumerate() {
                match shape.var_roles[index] {
                    NprocVarRole::Mode(i) => assert_eq!(name, format!("m{i}")),
                    NprocVarRole::Channel { from, to } => {
                        assert_eq!(name, format!("c{from}{to}"));
                    }
                    NprocVarRole::Belief { owner, about } => {
                        assert_eq!(name, format!("k{owner}{about}"));
                    }
                    NprocVarRole::Order => assert_eq!(name, "ord"),
                }
            }
            for index in 0..program.num_commands() {
                let name = program.command_name(index);
                assert_eq!(
                    shape.command_is_wrapper[index],
                    name.starts_with("wrapper"),
                    "{name}"
                );
                assert!(
                    name.contains(&shape.command_process[index].to_string()),
                    "{name} not owned by process {}",
                    shape.command_process[index]
                );
                assert!(program.ir_command(index).is_some(), "{name} lost its IR");
            }
        }
    }

    #[test]
    fn nproc_packed_and_reference_twins_agree_at_n2() {
        for with_wrapper in [false, true] {
            let (packed, packed_init) = program_nproc(2, with_wrapper);
            let (reference, reference_init) = program_nproc_reference(2, with_wrapper);
            let a = packed.compile(packed_init).unwrap();
            let b = reference.compile(reference_init).unwrap();
            assert_eq!(a.system(), b.system(), "wrapper={with_wrapper}");
        }
    }

    #[test]
    fn permutation_tables_are_consistent() {
        let perms = permutations(3);
        assert_eq!(perms.len(), 6);
        assert_eq!(perms[0], vec![0, 1, 2]); // identity first (lexicographic)
        let mut p = Program::new();
        let v = declare_n(&mut p, 3);
        // earlier is a strict total order in every permutation.
        for table in &v.earlier {
            for i in 0..3 {
                assert!(!table[i * 3 + i]);
                for j in 0..3 {
                    if i != j {
                        assert_ne!(table[i * 3 + j], table[j * 3 + i]);
                    }
                }
            }
        }
        // move_back really moves to the back and keeps the rest's order.
        for (pi, perm) in perms.iter().enumerate() {
            for i in 0..3 {
                let target = &perms[v.move_back[pi][i]];
                assert_eq!(*target.last().unwrap(), i);
                let rest: Vec<usize> = perm.iter().copied().filter(|&x| x != i).collect();
                assert_eq!(&target[..2], &rest[..]);
            }
        }
    }

    #[test]
    fn n2_streaming_check_matches_the_materialized_verdicts() {
        // build_n(2) is a *different* (smaller) model than build(), but
        // its streaming verdicts must agree with compiling the same two
        // programs through the materialized FairComposition pipeline.
        let tme = build_n(2).unwrap();
        assert_eq!(tme.num_states(), 9 * 9 * 4 * 2);
        let verdicts = tme.check().unwrap();
        assert!(verdicts.as_predicted(), "{verdicts:?}");

        let (fair_unwrapped, unwrapped) = tme
            .unwrapped_program()
            .compile_fair(tme.init_pred())
            .unwrap();
        let (fair_wrapped, wrapped) = tme.wrapped_program().compile_fair(tme.init_pred()).unwrap();
        assert_eq!(
            verdicts.unwrapped_stabilizes,
            fair_unwrapped
                .is_stabilizing_to(&stutter_closure(unwrapped.system()))
                .holds()
        );
        assert_eq!(
            verdicts.wrapped_stabilizes,
            fair_wrapped
                .is_stabilizing_to(&stutter_closure(wrapped.system()))
                .holds()
        );
        assert_eq!(
            verdicts.num_legitimate,
            wrapped.system().reachable_from_init().len()
        );
    }

    #[test]
    fn n2_deadlock_word_is_all_hungry() {
        let tme = build_n(2).unwrap();
        let values = tme.decode(tme.deadlock_state());
        assert_eq!(&values[..2], &[HUNGRY, HUNGRY]);
        assert!(values[2..].iter().all(|&v| v == 0));
    }

    #[test]
    #[ignore = "multi-minute in debug; T9 at Scale::Full runs it in release"]
    fn n3_full_check_is_as_predicted() {
        let verdicts = build_n(3).unwrap().check().unwrap();
        assert!(verdicts.as_predicted(), "{verdicts:?}");
        assert_eq!(verdicts.num_states, 7_558_272);
    }

    #[test]
    fn n3_deadlock_word_is_quiescent() {
        // The 3-process build is cheap (no compilation happens until
        // check()); single-state probes stay fast.
        let tme = build_n(3).unwrap();
        assert_eq!(tme.num_states(), 7_558_272);
        let deadlock = tme.deadlock_state();
        let values = tme.decode(deadlock);
        assert_eq!(&values[..3], &[HUNGRY, HUNGRY, HUNGRY]);
        assert_eq!(
            tme.unwrapped_program().step(deadlock).unwrap(),
            vec![deadlock]
        );
        // The wrapper enables a move there.
        assert_ne!(
            tme.wrapped_program().step(deadlock).unwrap(),
            vec![deadlock]
        );
    }

    #[test]
    fn nproc_symmetry_is_a_valid_symmetry() {
        for n in [2usize, 3] {
            for with_wrapper in [false, true] {
                let spec = nproc_symmetry(n, with_wrapper);
                let mut fact = 1usize;
                for f in 2..=n {
                    fact *= f;
                }
                assert_eq!(spec.order(), fact);
                let (program, _) = program_nproc(n, with_wrapper);
                spec.validate(&program).unwrap_or_else(|e| {
                    panic!("n={n} wrapper={with_wrapper}: {e}");
                });
                let (ir_program, _) = program_nproc_ir(n, with_wrapper);
                spec.validate(&ir_program).unwrap();
            }
        }
    }

    #[test]
    fn n2_reduced_check_is_bit_equal_to_the_full_check() {
        let tme = build_n(2).unwrap();
        let full = tme.check().unwrap();
        let reduced = tme.reduced_check().unwrap();
        assert_eq!(reduced.verdicts, full);
        assert_eq!(reduced.group_order, 2);
        // No state is fixed by the swap (the `ord` digit always moves),
        // so the quotient is exactly half the space.
        assert_eq!(reduced.num_canonical * 2, full.num_states);
        // And the sharded quotient sweep is bit-deterministic.
        for workers in [1usize, 2, 4] {
            assert_eq!(tme.reduced_check_on(workers).unwrap(), reduced);
        }
    }

    #[test]
    fn n2_reachable_check_agrees_with_the_reachable_fragment() {
        let tme = build_n(2).unwrap();
        let reach = tme.reachable_check(usize::MAX).unwrap();
        assert_eq!(reach.num_states, 9 * 9 * 4 * 2);
        assert!(reach.me1);
        assert!(reach.deadlock_quiescent);
        assert!(reach.deadlock_illegitimate);
        // The wrapper recovers from the deadlock in finitely many steps.
        let steps = reach.recovery_steps.expect("wrapper must recover");
        assert!(steps >= 1);
        // Quotient legitimate count matches the full reachable set:
        // every orbit of the (G-closed) legitimate set has exactly one
        // canonical representative, and no state is swap-fixed.
        let full = tme.check().unwrap();
        assert_eq!(reach.num_canonical_legitimate * 2, full.num_legitimate);
        assert_eq!(tme.reachable_check_on(3, usize::MAX).unwrap(), reach);
    }

    #[test]
    #[ignore = "minutes in debug; CI runs it in release as the reduced-vs-full gate"]
    fn n3_reduced_check_equals_the_full_check() {
        let tme = build_n(3).unwrap();
        let full = tme.check().unwrap();
        let reduced = tme.reduced_check().unwrap();
        assert_eq!(reduced.verdicts, full, "quotient verdict diverged");
        assert!(reduced.verdicts.as_predicted());
        assert_eq!(reduced.group_order, 6);
        // The ISSUE gate: >= 5x fewer interned states than 7,558,272.
        // Exactly 6x here — no state survives a non-identity relabeling.
        assert_eq!(reduced.num_canonical * 6, 7_558_272);
    }

    #[test]
    #[ignore = "tens of seconds; release CI covers the n=4 unlock"]
    fn n4_reachable_check_is_as_predicted() {
        let tme = build_n(4).unwrap();
        assert_eq!(tme.num_states(), 4_231_664_861_184);
        let reach = tme.reachable_check(1 << 27).unwrap();
        assert!(reach.me1, "{reach:?}");
        assert!(reach.deadlock_quiescent);
        assert!(reach.deadlock_illegitimate);
        assert!(reach.recovery_steps.is_some());
        assert_eq!(reach.group_order, 24);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn find_me1_violation() {
        use std::collections::{BTreeMap, VecDeque};
        let tme = build().unwrap();
        let v = tme.vars;
        let sys = tme.protocol.system();
        let target = tme
            .protocol
            .system()
            .reachable_from_init()
            .iter()
            .find(|&s| {
                let values = tme.protocol.decode(s);
                values[v.m[0].index()] == EATING && values[v.m[1].index()] == EATING
            });
        let Some(target) = target else {
            panic!("no violation")
        };
        // BFS with predecessors.
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = sys.init().iter().collect();
        let mut seen: std::collections::BTreeSet<usize> = sys.init().iter().collect();
        while let Some(state) = queue.pop_front() {
            for next in sys.successors(state) {
                if seen.insert(next) {
                    pred.insert(next, state);
                    queue.push_back(next);
                }
            }
        }
        let mut path = vec![target];
        while let Some(&p) = pred.get(path.last().unwrap()) {
            path.push(p);
            if sys.init().contains(p) {
                break;
            }
        }
        path.reverse();
        for s in path {
            eprintln!(
                "  {s}: {:?} (m0,m1,c01,c10,k0,k1,d0,d1,ord)",
                tme.protocol.decode(s)
            );
        }
        panic!("done");
    }

    #[test]
    #[ignore]
    fn find_wrapped_divergence() {
        let tme = build().unwrap();
        let target = stutter_closure(tme.protocol.system());
        let report = tme.fair_wrapped.is_stabilizing_to(&target);
        if let Some((from, to)) = report.divergent_edge {
            eprintln!(
                "divergent edge {from}->{to}: {:?} -> {:?}",
                tme.protocol.decode(from),
                tme.protocol.decode(to)
            );
            eprintln!("from legit: {}", report.legitimate_states.contains(from));
            eprintln!("to legit: {}", report.legitimate_states.contains(to));
        }
        panic!("done");
    }
}
