//! An exhaustively model-checked abstraction of the TME case study.
//!
//! The simulation experiments (T3/T4/…) sample the wrapped protocol's
//! behaviour; this module complements them with an **exhaustive** check at
//! small scale: a 2-process abstraction of Ricart–Agrawala plus the
//! graybox wrapper, expressed in the guarded-command DSL of [`crate::gcl`]
//! and verified over its *entire* state space (≈2.6k states) — every
//! possible transient corruption is just some state, and the model checker
//! proves convergence from all of them.
//!
//! ## The abstraction
//!
//! Timestamps collapse to a ground-truth order bit `ord` (who of two
//! simultaneously hungry processes requested first) and per-process belief
//! bits `k_i` (“my local information confirms my request precedes the
//! peer's” — the abstraction of `REQ_i lt i.REQ_j`). Channels are
//! single-slot (`empty` / `request` / `reply`); sending overwrites, which
//! subsumes loss and duplication. Deferred replies are a bit `d_i`.
//!
//! | paper | here |
//! |---|---|
//! | `t.i / h.i / e.i` | `m_i ∈ {0,1,2}` |
//! | `REQ_i lt i.REQ_j` | `k_i = 1` |
//! | deferred set | `d_i = 1` |
//! | FIFO channel `i→j` | slot `c_ij ∈ {empty, request, reply}` |
//! | wrapper `W_i` | `h.i ∧ ¬k_i → resend request` (never clobbering a reply in flight) |
//!
//! ## What is proved
//!
//! * the protocol's legitimate behaviour satisfies ME1 (never both eating)
//!   as a [`crate::unity`] invariant;
//! * the **unwrapped** protocol is *not* stabilizing: the §4 deadlock
//!   (both hungry, channels empty, neither believing it precedes) is a
//!   reachable-from-anywhere quiescent state outside legitimate behaviour;
//! * the **wrapped** composition is stabilizing to the protocol's
//!   legitimate behaviour from *every* one of the ≈2.6k states, under
//!   weak fairness — the paper's Theorem 8 in miniature, exhaustively.

use crate::fairness::FairComposition;
use crate::gcl::{CompiledProgram, GclError, Program, Valuation, VarRef};
use crate::synthesis::stutter_closure;
use crate::FiniteSystem;

/// Mode values of the abstraction.
pub const THINKING: usize = 0;
/// Hungry.
pub const HUNGRY: usize = 1;
/// Eating.
pub const EATING: usize = 2;

/// Channel slot values.
pub const EMPTY: usize = 0;
/// A request is in flight.
pub const REQUEST: usize = 1;
/// A reply is in flight.
pub const REPLY: usize = 2;

#[derive(Debug, Clone, Copy)]
struct Vars {
    m: [VarRef; 2],
    c: [VarRef; 2], // c[0] = channel 0→1, c[1] = channel 1→0
    k: [VarRef; 2],
    d: [VarRef; 2],
    ord: VarRef,
}

fn declare(program: &mut Program) -> Vars {
    Vars {
        m: [program.var("m0", 3), program.var("m1", 3)],
        c: [program.var("c01", 3), program.var("c10", 3)],
        k: [program.var("k0", 2), program.var("k1", 2)],
        d: [program.var("d0", 2), program.var("d1", 2)],
        ord: program.var("ord", 2),
    }
}

fn protocol_commands(program: &mut Program, v: Vars, with_wrapper: bool) {
    for i in 0..2usize {
        let j = 1 - i;
        // Request CS: t → h, send request, forget stale belief; fix the
        // ground-truth order (a peer already hungry *or eating* precedes),
        // and void any reply still in flight to us — in the real protocol
        // a reply approves one specific request via its timestamp (the
        // monotonicity behind invariant I); the bit abstraction carries no
        // timestamp, so freshness is modelled by purging at request time.
        program.command(
            format!("request{i}"),
            move |s: &Valuation| s[v.m[i]] == THINKING,
            move |s: &mut Valuation| {
                s[v.m[i]] = HUNGRY;
                s[v.c[i]] = REQUEST;
                s[v.k[i]] = 0;
                s[v.ord] = if s[v.m[j]] != THINKING { j } else { i };
                if s[v.c[j]] == REPLY {
                    s[v.c[j]] = EMPTY;
                }
            },
        );
        // Receive request: consume it; reply unless we are hungry with the
        // earlier request (then defer and *learn* we precede) or eating
        // (then defer).
        program.command(
            format!("recv_request{i}"),
            move |s: &Valuation| s[v.c[j]] == REQUEST,
            move |s: &mut Valuation| {
                s[v.c[j]] = EMPTY;
                let earlier = s[v.m[i]] == HUNGRY && s[v.ord] == i;
                if s[v.m[i]] == EATING || earlier {
                    s[v.d[i]] = 1;
                    if earlier {
                        s[v.k[i]] = 1;
                    }
                } else {
                    s[v.c[i]] = REPLY;
                }
            },
        );
        // Receive reply: while hungry it confirms precedence.
        program.command(
            format!("recv_reply{i}"),
            move |s: &Valuation| s[v.c[j]] == REPLY,
            move |s: &mut Valuation| {
                s[v.c[j]] = EMPTY;
                if s[v.m[i]] == HUNGRY {
                    s[v.k[i]] = 1;
                }
            },
        );
        // Grant CS.
        program.command(
            format!("enter{i}"),
            move |s: &Valuation| s[v.m[i]] == HUNGRY && s[v.k[i]] == 1,
            move |s: &mut Valuation| s[v.m[i]] = EATING,
        );
        // Release CS: back to thinking, send the deferred reply.
        program.command(
            format!("release{i}"),
            move |s: &Valuation| s[v.m[i]] == EATING,
            move |s: &mut Valuation| {
                s[v.m[i]] = THINKING;
                s[v.k[i]] = 0;
                if s[v.d[i]] == 1 {
                    s[v.d[i]] = 0;
                    s[v.c[i]] = REPLY;
                }
            },
        );
        if with_wrapper {
            // The graybox wrapper: while hungry without confirmed
            // precedence, re-send the request (into an empty or
            // request-holding slot; a reply in flight is not clobbered —
            // the single-slot abstraction of FIFO).
            program.command(
                format!("wrapper{i}"),
                move |s: &Valuation| s[v.m[i]] == HUNGRY && s[v.k[i]] == 0 && s[v.c[i]] != REPLY,
                move |s: &mut Valuation| s[v.c[i]] = REQUEST,
            );
        }
    }
}

fn is_init(v: Vars) -> impl Fn(&Valuation) -> bool {
    move |s: &Valuation| {
        (0..2).all(|i| {
            s[v.m[i]] == THINKING && s[v.c[i]] == EMPTY && s[v.k[i]] == 0 && s[v.d[i]] == 0
        }) && s[v.ord] == 0
    }
}

/// The compiled abstract TME instance.
#[derive(Debug)]
pub struct AbstractTme {
    protocol: CompiledProgram,
    wrapped: CompiledProgram,
    fair_unwrapped: FairComposition,
    fair_wrapped: FairComposition,
    vars: Vars,
}

/// Builds the 2-process abstraction (protocol, and its weakly fair
/// compositions with and without the wrapper command).
///
/// # Errors
///
/// Returns [`GclError`] if compilation fails (it cannot, absent bugs).
pub fn build() -> Result<AbstractTme, GclError> {
    let mut plain = Program::new();
    let vars = declare(&mut plain);
    protocol_commands(&mut plain, vars, false);
    let (fair_unwrapped, protocol) = plain.compile_fair(is_init(vars))?;

    let mut wrapped_program = Program::new();
    let wvars = declare(&mut wrapped_program);
    protocol_commands(&mut wrapped_program, wvars, true);
    let (fair_wrapped, wrapped) = wrapped_program.compile_fair(is_init(wvars))?;

    Ok(AbstractTme {
        protocol,
        wrapped,
        fair_unwrapped,
        fair_wrapped,
        vars,
    })
}

impl AbstractTme {
    /// The compiled protocol (its system's init-reachable part is the
    /// legitimate behaviour).
    pub fn protocol(&self) -> &FiniteSystem {
        self.protocol.system()
    }

    /// Total number of global states.
    pub fn num_states(&self) -> usize {
        self.protocol.system().num_states()
    }

    /// The wrapped system (protocol plus wrapper commands) — the finite
    /// stand-in for `Lspec`: by Lemma 6 the wrapper's re-sends are
    /// behaviour the specification allows, so legitimacy and the
    /// convergence target are defined over this system.
    pub fn wrapped(&self) -> &FiniteSystem {
        self.wrapped.system()
    }

    /// Number of legitimate (init-reachable, wrapper included) states.
    pub fn num_legitimate(&self) -> usize {
        self.wrapped.system().reachable_from_init().len()
    }

    /// ME1 over legitimate behaviour (wrapper included): never both eating.
    pub fn me1_invariant(&self) -> bool {
        let v = self.vars;
        let decode = |state: usize| self.protocol.decode(state);
        let not_both_eating = move |state: usize| {
            let values = decode(state);
            !(values[v.m[0].index()] == EATING && values[v.m[1].index()] == EATING)
        };
        // Invariant over the init-reachable subgraph of the wrapped system
        // (a superset of the bare protocol's — Lemma 6 interference
        // freedom is part of what is being checked here).
        self.wrapped
            .system()
            .reachable_from_init()
            .iter()
            .all(not_both_eating)
    }

    /// Is the *unwrapped* protocol stabilizing to its own legitimate
    /// behaviour? (No — the §4 deadlock is a quiescent illegitimate state.)
    pub fn unwrapped_stabilizes(&self) -> bool {
        self.fair_unwrapped
            .is_stabilizing_to(&stutter_closure(self.protocol.system()))
            .holds()
    }

    /// Is the *wrapped* composition stabilizing to the legitimate
    /// behaviour of the wrapped system (the `Lspec` stand-in), from every
    /// state, under weak fairness? This is Theorem 8 in miniature:
    /// `M ⊓ W` is stabilizing to `Lspec` — and `Lspec` admits the
    /// wrapper's re-sends (Lemma 6), so the target includes them.
    pub fn wrapped_stabilizes(&self) -> bool {
        self.fair_wrapped
            .is_stabilizing_to(&stutter_closure(self.wrapped.system()))
            .holds()
    }

    /// Encodes the §4 deadlock state: both hungry, channels empty, neither
    /// believing it precedes, nothing deferred.
    pub fn deadlock_state(&self) -> usize {
        // Mixed-radix with declaration order m0,m1,c01,c10,k0,k1,d0,d1,ord
        // (component 0 least significant, domains 3,3,3,3,2,2,2,2,2).
        let values = [HUNGRY, HUNGRY, EMPTY, EMPTY, 0, 0, 0, 0, 0];
        let domains = [3usize, 3, 3, 3, 2, 2, 2, 2, 2];
        values
            .iter()
            .zip(domains)
            .rev()
            .fold(0, |acc, (&value, domain)| acc * domain + value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_space_is_the_expected_size() {
        let tme = build().unwrap();
        assert_eq!(tme.num_states(), 3 * 3 * 3 * 3 * 2 * 2 * 2 * 2 * 2);
        let legit = tme.num_legitimate();
        assert!(legit > 1 && legit < tme.num_states());
    }

    #[test]
    fn legitimate_behaviour_satisfies_me1() {
        assert!(build().unwrap().me1_invariant());
    }

    #[test]
    fn deadlock_state_decodes_correctly() {
        let tme = build().unwrap();
        let values = tme.protocol.decode(tme.deadlock_state());
        assert_eq!(&values[..4], &[HUNGRY, HUNGRY, EMPTY, EMPTY]);
    }

    #[test]
    fn deadlock_state_is_quiescent_and_illegitimate_unwrapped() {
        let tme = build().unwrap();
        let deadlock = tme.deadlock_state();
        // No protocol command is enabled: the only transition is the
        // compiler's quiescence stutter.
        let succ: Vec<usize> = tme.protocol().successors(deadlock).collect();
        assert_eq!(succ, vec![deadlock]);
        assert!(!tme.protocol().reachable_from_init().contains(deadlock));
        // And it stays illegitimate even for the Lspec stand-in (the
        // wrapped system cannot reach it from Init either).
        assert!(!tme.wrapped().reachable_from_init().contains(deadlock));
    }

    #[test]
    fn unwrapped_protocol_is_not_stabilizing() {
        assert!(!build().unwrap().unwrapped_stabilizes());
    }

    #[test]
    fn wrapped_protocol_is_stabilizing_from_all_states() {
        // The paper's Theorem 8 in miniature, checked exhaustively over
        // every global state (including every possible corruption).
        assert!(build().unwrap().wrapped_stabilizes());
    }

    #[test]
    fn wrapper_breaks_the_deadlock_specifically() {
        let tme = build().unwrap();
        let deadlock = tme.deadlock_state();
        // In the wrapped system the deadlock state has a non-stutter
        // successor (the wrapper re-sends a request).
        let succ: Vec<usize> = tme
            .fair_wrapped
            .union()
            .successors(deadlock)
            .filter(|&next| next != deadlock)
            .collect();
        assert!(!succ.is_empty(), "wrapper enabled no move at the deadlock");
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn find_me1_violation() {
        use std::collections::{BTreeMap, VecDeque};
        let tme = build().unwrap();
        let v = tme.vars;
        let sys = tme.protocol.system();
        let target = tme
            .protocol
            .system()
            .reachable_from_init()
            .iter()
            .find(|&s| {
                let values = tme.protocol.decode(s);
                values[v.m[0].index()] == EATING && values[v.m[1].index()] == EATING
            });
        let Some(target) = target else {
            panic!("no violation")
        };
        // BFS with predecessors.
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = sys.init().iter().collect();
        let mut seen: std::collections::BTreeSet<usize> = sys.init().iter().collect();
        while let Some(state) = queue.pop_front() {
            for next in sys.successors(state) {
                if seen.insert(next) {
                    pred.insert(next, state);
                    queue.push_back(next);
                }
            }
        }
        let mut path = vec![target];
        while let Some(&p) = pred.get(path.last().unwrap()) {
            path.push(p);
            if sys.init().contains(p) {
                break;
            }
        }
        path.reverse();
        for s in path {
            eprintln!(
                "  {s}: {:?} (m0,m1,c01,c10,k0,k1,d0,d1,ord)",
                tme.protocol.decode(s)
            );
        }
        panic!("done");
    }

    #[test]
    #[ignore]
    fn find_wrapped_divergence() {
        let tme = build().unwrap();
        let target = stutter_closure(tme.protocol.system());
        let report = tme.fair_wrapped.is_stabilizing_to(&target);
        if let Some((from, to)) = report.divergent_edge {
            eprintln!(
                "divergent edge {from}->{to}: {:?} -> {:?}",
                tme.protocol.decode(from),
                tme.protocol.decode(to)
            );
            eprintln!("from legit: {}", report.legitimate_states.contains(from));
            eprintln!("to legit: {}", report.legitimate_states.contains(to));
        }
        panic!("done");
    }
}
