use crate::{FiniteSystem, SystemError};

/// The paper's box operator `C ⊓ W` (§2.1).
///
/// `C ⊓ W` is "the system whose set of computations is the smallest fusion
/// closed set that contains the computations of `C` as well as the
/// computations of `W`, and whose initial states are the common initial
/// states of `C` and `W`". For path-set systems over a shared state space,
/// the smallest fusion-closed superset of two path sets is the path set of
/// the *edge union* — so box composition is edge union plus init
/// intersection.
///
/// # Errors
///
/// Returns [`SystemError`] if the operands disagree on the state-space size
/// (reported as an out-of-range state).
///
/// # Example
///
/// ```
/// use graybox_core::{box_compose, FiniteSystem};
///
/// let c = FiniteSystem::builder(2).initial(0).edges([(0, 0), (1, 1)]).build()?;
/// let w = FiniteSystem::builder(2).initial(0).initial(1).edges([(0, 1), (1, 0)]).build()?;
/// let both = box_compose(&c, &w)?;
/// assert!(both.has_edge(0, 0) && both.has_edge(0, 1));
/// assert_eq!(both.init().len(), 1); // common initial states only
/// # Ok::<(), graybox_core::SystemError>(())
/// ```
pub fn box_compose(c: &FiniteSystem, w: &FiniteSystem) -> Result<FiniteSystem, SystemError> {
    if c.num_states() != w.num_states() {
        return Err(SystemError::StateOutOfRange {
            state: c.num_states().max(w.num_states()) - 1,
            num_states: c.num_states().min(w.num_states()),
        });
    }
    // Merge the sorted CSR rows directly; the union of two total relations
    // is total, so re-validating through the builder is unnecessary.
    Ok(c.box_union(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    #[test]
    fn box_unions_edges_and_intersects_inits() {
        let c = sys(3, &[0, 1], &[(0, 1), (1, 2), (2, 2)]);
        let w = sys(3, &[1, 2], &[(0, 0), (1, 1), (2, 0)]);
        let both = box_compose(&c, &w).unwrap();
        assert_eq!(both.init().iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(both.edges().len(), 6);
    }

    #[test]
    fn box_is_commutative() {
        let c = sys(2, &[0], &[(0, 1), (1, 0)]);
        let w = sys(2, &[0, 1], &[(0, 0), (1, 1)]);
        assert_eq!(box_compose(&c, &w).unwrap(), box_compose(&w, &c).unwrap());
    }

    #[test]
    fn box_is_idempotent() {
        let c = sys(2, &[0], &[(0, 1), (1, 0)]);
        assert_eq!(box_compose(&c, &c).unwrap(), c);
    }

    #[test]
    fn box_is_associative() {
        let a = sys(2, &[0], &[(0, 1), (1, 0)]);
        let b = sys(2, &[0, 1], &[(0, 0), (1, 1)]);
        let c = sys(2, &[0], &[(1, 0), (0, 0)]);
        let left = box_compose(&box_compose(&a, &b).unwrap(), &c).unwrap();
        let right = box_compose(&a, &box_compose(&b, &c).unwrap()).unwrap();
        assert_eq!(left, right);
    }

    #[test]
    fn mismatched_spaces_are_rejected() {
        let c = sys(2, &[0], &[(0, 1), (1, 0)]);
        let w = sys(3, &[0], &[(0, 0), (1, 1), (2, 2)]);
        assert!(box_compose(&c, &w).is_err());
    }

    #[test]
    fn composition_preserves_totality() {
        // Both operands are total, so the union trivially is; the builder
        // would reject otherwise.
        let c = sys(2, &[0], &[(0, 1), (1, 0)]);
        let w = sys(2, &[0], &[(0, 0), (1, 1)]);
        let both = box_compose(&c, &w).unwrap();
        for state in 0..2 {
            assert!(both.successors(state).next().is_some());
        }
    }
}
