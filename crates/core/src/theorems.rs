//! Machine-checked instances of the paper's composition theorems.
//!
//! The paper proves Lemma 0, Theorem 1 (stabilization via everywhere
//! specifications), Lemmas 2–3 and Theorem 4 (stabilization via *local*
//! everywhere specifications) once and for all. This module provides
//! checkers that validate each statement on concrete finite instances —
//! used by the test suite on hand-built systems and by property tests on
//! randomly generated ones (see [`crate::randsys`]).
//!
//! Each checker returns a [`TheoremOutcome`] distinguishing "premises
//! failed" (vacuously true) from "premises and conclusion hold" and
//! "counterexample to the theorem" (which would indicate a bug in this
//! library, not in the paper).

use crate::{box_compose, everywhere_implements, is_stabilizing_to, FiniteSystem, SystemError};

/// Result of instantiating a theorem on concrete systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TheoremOutcome {
    /// Whether all premises held on the instance.
    pub premises_hold: bool,
    /// Whether the conclusion held on the instance.
    pub conclusion_holds: bool,
}

impl TheoremOutcome {
    /// The implication itself: premises ⇒ conclusion.
    pub fn validated(self) -> bool {
        !self.premises_hold || self.conclusion_holds
    }

    /// True when the premises held, so the instance genuinely exercised the
    /// theorem rather than passing vacuously.
    pub fn exercised(self) -> bool {
        self.premises_hold
    }
}

/// Lemma 0: `[C ⇒ A] ∧ [W' ⇒ W] ⇒ [(C ⊓ W') ⇒ (A ⊓ W)]`.
///
/// # Errors
///
/// Returns [`SystemError`] if the four systems do not share a state space.
pub fn check_lemma0(
    c: &FiniteSystem,
    a: &FiniteSystem,
    w_prime: &FiniteSystem,
    w: &FiniteSystem,
) -> Result<TheoremOutcome, SystemError> {
    let premises_hold = everywhere_implements(c, a) && everywhere_implements(w_prime, w);
    let cw = box_compose(c, w_prime)?;
    let aw = box_compose(a, w)?;
    Ok(TheoremOutcome {
        premises_hold,
        conclusion_holds: everywhere_implements(&cw, &aw),
    })
}

/// Theorem 1: if `[C ⇒ A]`, `A ⊓ W` is stabilizing to `A`, and `[W' ⇒ W]`,
/// then `C ⊓ W'` is stabilizing to `A`.
///
/// # Errors
///
/// Returns [`SystemError`] if the systems do not share a state space.
pub fn check_theorem1(
    c: &FiniteSystem,
    a: &FiniteSystem,
    w_prime: &FiniteSystem,
    w: &FiniteSystem,
) -> Result<TheoremOutcome, SystemError> {
    let aw = box_compose(a, w)?;
    let premises_hold = everywhere_implements(c, a)
        && everywhere_implements(w_prime, w)
        && is_stabilizing_to(&aw, a).holds();
    let cw = box_compose(c, w_prime)?;
    Ok(TheoremOutcome {
        premises_hold,
        conclusion_holds: is_stabilizing_to(&cw, a).holds(),
    })
}

/// A family of per-process *local* systems, composed into a global system
/// over the product state space — the paper's
/// `A = (⊓ i :: A_i)`, `C = (⊓ i :: C_i)` construction for local
/// everywhere specifications (§2.1).
///
/// Process `i`'s local system is over its own local state space; the lifted
/// global transition changes only component `i`. Global states are encoded
/// mixed-radix with component 0 least significant.
#[derive(Debug, Clone)]
pub struct LocalFamily {
    locals: Vec<FiniteSystem>,
}

impl LocalFamily {
    /// Wraps per-process local systems into a family.
    pub fn new(locals: Vec<FiniteSystem>) -> Self {
        LocalFamily { locals }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.locals.len()
    }

    /// True when the family has no processes.
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }

    /// The local system of process `i`.
    pub fn local(&self, i: usize) -> &FiniteSystem {
        &self.locals[i]
    }

    /// Size of the global product state space.
    pub fn global_states(&self) -> usize {
        self.locals.iter().map(|s| s.num_states()).product()
    }

    /// Decodes a global state into per-process local states.
    pub fn decode(&self, mut global: usize) -> Vec<usize> {
        let mut parts = Vec::with_capacity(self.locals.len());
        for local in &self.locals {
            parts.push(global % local.num_states());
            global /= local.num_states();
        }
        parts
    }

    /// Encodes per-process local states into a global state.
    pub fn encode(&self, parts: &[usize]) -> usize {
        let mut global = 0;
        for (local, &part) in self.locals.iter().zip(parts).rev() {
            global = global * local.num_states() + part;
        }
        global
    }

    /// Lifts process `i`'s local system to the global space: transitions
    /// apply `A_i`'s relation to component `i` and leave the rest alone;
    /// a global state is initial when *component `i`* is initial locally
    /// (the box of all lifts then intersects these, yielding the product of
    /// local init sets).
    pub fn lift(&self, i: usize) -> Result<FiniteSystem, SystemError> {
        let total = self.global_states();
        let mut builder = FiniteSystem::builder(total);
        for global in 0..total {
            let parts = self.decode(global);
            if self.locals[i].init().contains(parts[i]) {
                builder = builder.initial(global);
            }
            for next_local in self.locals[i].successors(parts[i]) {
                let mut next_parts = parts.clone();
                next_parts[i] = next_local;
                builder = builder.edge(global, self.encode(&next_parts));
            }
        }
        builder.build()
    }

    /// The global composition `⊓ i :: lift(i)`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if any local system is malformed or the
    /// family is empty.
    pub fn compose(&self) -> Result<FiniteSystem, SystemError> {
        if self.locals.is_empty() {
            return Err(SystemError::EmptyStateSpace);
        }
        let mut acc = self.lift(0)?;
        for i in 1..self.locals.len() {
            acc = box_compose(&acc, &self.lift(i)?)?;
        }
        Ok(acc)
    }
}

/// Lemma 2: `(∀i :: [C_i ⇒ A_i]) ⇒ [C ⇒ A]` for `C = ⊓ᵢ Cᵢ`, `A = ⊓ᵢ Aᵢ`.
///
/// # Errors
///
/// Returns [`SystemError`] if the families are malformed or of different
/// shapes.
pub fn check_lemma2(
    c_family: &LocalFamily,
    a_family: &LocalFamily,
) -> Result<TheoremOutcome, SystemError> {
    let premises_hold = c_family.len() == a_family.len()
        && (0..c_family.len()).all(|i| everywhere_implements(c_family.local(i), a_family.local(i)));
    let c = c_family.compose()?;
    let a = a_family.compose()?;
    Ok(TheoremOutcome {
        premises_hold,
        conclusion_holds: everywhere_implements(&c, &a),
    })
}

/// Theorem 4: if `(∀i :: [C_i ⇒ A_i])`, `(∀i :: [W'_i ⇒ W_i])`, and
/// `A ⊓ W` is stabilizing to `A`, then `C ⊓ W'` is stabilizing to `A`.
///
/// # Errors
///
/// Returns [`SystemError`] if the families are malformed or of different
/// shapes.
pub fn check_theorem4(
    c_family: &LocalFamily,
    a_family: &LocalFamily,
    w_prime_family: &LocalFamily,
    w_family: &LocalFamily,
) -> Result<TheoremOutcome, SystemError> {
    let shapes_match = c_family.len() == a_family.len()
        && w_prime_family.len() == w_family.len()
        && c_family.len() == w_family.len();
    let local_premises = shapes_match
        && (0..c_family.len()).all(|i| {
            everywhere_implements(c_family.local(i), a_family.local(i))
                && everywhere_implements(w_prime_family.local(i), w_family.local(i))
        });
    let a = a_family.compose()?;
    let w = w_family.compose()?;
    let aw = box_compose(&a, &w)?;
    let premises_hold = local_premises && is_stabilizing_to(&aw, &a).holds();
    let c = c_family.compose()?;
    let w_prime = w_prime_family.compose()?;
    let cw = box_compose(&c, &w_prime)?;
    Ok(TheoremOutcome {
        premises_hold,
        conclusion_holds: is_stabilizing_to(&cw, &a).holds(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    /// A 2-state local spec: 0 = consistent, 1 = corrupt, with a recovery
    /// edge. Note that under the paper's *pure* path semantics (no
    /// fairness), `A ⊓ W` can only stabilize if `A` has no divergent cycle
    /// itself — the genuinely interesting wrapper instances live in
    /// [`crate::fairness`]. These instances exercise the literal theorem
    /// statements.
    fn local_spec() -> FiniteSystem {
        sys(2, &[0], &[(0, 0), (1, 0)])
    }

    fn local_impl() -> FiniteSystem {
        sys(2, &[0], &[(0, 0), (1, 0)])
    }

    fn local_wrapper() -> FiniteSystem {
        sys(2, &[0, 1], &[(0, 0), (1, 0)])
    }

    #[test]
    fn encode_decode_round_trip() {
        let family = LocalFamily::new(vec![local_spec(), local_spec(), local_spec()]);
        for global in 0..family.global_states() {
            assert_eq!(family.encode(&family.decode(global)), global);
        }
        assert_eq!(family.global_states(), 8);
    }

    #[test]
    fn lift_changes_only_one_component() {
        let family = LocalFamily::new(vec![local_spec(), local_spec()]);
        let lifted = family.lift(0).unwrap();
        for (from, to) in lifted.edges() {
            let (pf, pt) = (family.decode(from), family.decode(to));
            assert_eq!(pf[1], pt[1], "component 1 must not change in lift(0)");
        }
    }

    #[test]
    fn composed_init_is_product_of_local_inits() {
        let family = LocalFamily::new(vec![local_spec(), local_spec()]);
        let composed = family.compose().unwrap();
        assert_eq!(composed.init().len(), 1);
        let init = composed.init().iter().next().unwrap();
        assert_eq!(family.decode(init), vec![0, 0]);
    }

    #[test]
    fn lemma0_holds_on_wrapper_instance() {
        let a = local_spec();
        let c = local_impl();
        let w = local_wrapper();
        let out = check_lemma0(&c, &a, &w, &w).unwrap();
        assert!(out.exercised());
        assert!(out.validated());
        assert!(out.conclusion_holds);
    }

    #[test]
    fn theorem1_holds_on_wrapper_instance() {
        let a = local_spec();
        let c = local_impl();
        let w = local_wrapper();
        let out = check_theorem1(&c, &a, &w, &w).unwrap();
        assert!(out.exercised());
        assert!(out.conclusion_holds);
    }

    #[test]
    fn pure_box_cannot_remove_divergent_cycles() {
        // Documents why the fairness module exists: under pure path
        // semantics, the box operator only adds computations, so a spec
        // with a divergent cycle can never be wrapped into stabilization.
        let a = sys(2, &[0], &[(0, 0), (1, 1)]);
        let w = sys(2, &[0, 1], &[(0, 0), (1, 0)]);
        let aw = box_compose(&a, &w).unwrap();
        assert!(!is_stabilizing_to(&a, &a).holds());
        assert!(!is_stabilizing_to(&aw, &a).holds());
    }

    #[test]
    fn theorem1_is_vacuous_without_everywhere_implementation() {
        // The Figure 1 C is not an everywhere implementation; the theorem
        // does not apply (premises fail), so no conclusion is forced.
        let (a, c) = crate::figure1::systems();
        let idle = sys(
            5,
            &[0, 1, 2, 3, 4],
            &(0..5).map(|s| (s, s)).collect::<Vec<_>>(),
        );
        let out = check_theorem1(&c, &a, &idle, &idle).unwrap();
        assert!(!out.exercised());
        assert!(out.validated()); // vacuously
    }

    #[test]
    fn lemma2_holds_on_two_process_family() {
        let a_family = LocalFamily::new(vec![local_spec(), local_spec()]);
        let c_family = LocalFamily::new(vec![local_impl(), local_impl()]);
        let out = check_lemma2(&c_family, &a_family).unwrap();
        assert!(out.exercised());
        assert!(out.conclusion_holds);
    }

    /// Oscillator locals: no self-loops, so the lifted product has no
    /// divergent stutter cycles and Theorem 4's premise can hold
    /// non-vacuously under pure path semantics.
    fn oscillator(inits: &[usize]) -> FiniteSystem {
        sys(2, inits, &[(0, 1), (1, 0)])
    }

    #[test]
    fn theorem4_holds_on_two_process_family() {
        let a_family = LocalFamily::new(vec![oscillator(&[0]), oscillator(&[0])]);
        let c_family = LocalFamily::new(vec![oscillator(&[0]), oscillator(&[0])]);
        let w_family = LocalFamily::new(vec![oscillator(&[0, 1]), oscillator(&[0, 1])]);
        let out = check_theorem4(&c_family, &a_family, &w_family, &w_family).unwrap();
        assert!(out.exercised(), "premises should hold on this instance");
        assert!(out.conclusion_holds);
    }

    #[test]
    fn theorem4_premise_fails_when_local_skips_create_divergent_stutter() {
        // Documents the pure-semantics limitation that motivates the
        // fairness module: a consistent process may stutter while its peer
        // stays corrupt, so A ⊓ W is not (pure-)stabilizing to A.
        let a_family = LocalFamily::new(vec![local_spec(), local_spec()]);
        let c_family = LocalFamily::new(vec![local_impl(), local_impl()]);
        let w_family = LocalFamily::new(vec![local_wrapper(), local_wrapper()]);
        let out = check_theorem4(&c_family, &a_family, &w_family, &w_family).unwrap();
        assert!(!out.exercised());
        assert!(out.validated()); // vacuously true — the theorem is not contradicted
    }

    #[test]
    fn theorem4_detects_failed_local_premise() {
        let a_family = LocalFamily::new(vec![local_spec(), local_spec()]);
        // Second process's "implementation" takes an edge the spec lacks.
        let rogue = sys(2, &[0], &[(0, 1), (1, 1)]);
        let c_family = LocalFamily::new(vec![local_impl(), rogue]);
        let w_family = LocalFamily::new(vec![local_wrapper(), local_wrapper()]);
        let out = check_theorem4(&c_family, &a_family, &w_family, &w_family).unwrap();
        assert!(!out.exercised());
    }

    #[test]
    fn three_process_family_still_checks() {
        let a_family = LocalFamily::new(vec![oscillator(&[0]); 3]);
        let c_family = LocalFamily::new(vec![oscillator(&[0]); 3]);
        let w_family = LocalFamily::new(vec![oscillator(&[0, 1]); 3]);
        let out = check_theorem4(&c_family, &a_family, &w_family, &w_family).unwrap();
        assert!(out.exercised());
        assert!(out.conclusion_holds);
    }

    #[test]
    fn empty_family_is_rejected() {
        let empty = LocalFamily::new(vec![]);
        assert!(empty.is_empty());
        assert!(empty.compose().is_err());
    }
}
