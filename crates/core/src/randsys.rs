//! Seeded random system generators for property-based testing.
//!
//! The theorem checkers in [`crate::theorems`] and [`crate::fairness`] are
//! universally quantified statements; these generators let the test suite
//! instantiate them on thousands of random systems. Everything is driven by
//! a caller-supplied [`graybox_rng::Rng`], so failures are reproducible from the
//! seed.

use graybox_rng::seq::SliceRandom;
use graybox_rng::Rng;

use crate::{FiniteSystem, SystemBuilder};

/// Generates a random total system over `num_states` states.
///
/// Each state receives between 1 and `max_out` outgoing edges (uniformly
/// chosen targets) and each state is initial with probability `init_prob`;
/// at least one initial state is guaranteed.
pub fn random_system<R: Rng>(
    rng: &mut R,
    num_states: usize,
    max_out: usize,
    init_prob: f64,
) -> FiniteSystem {
    assert!(num_states > 0, "need at least one state");
    assert!(max_out > 0, "need at least one outgoing edge per state");
    let mut builder = FiniteSystem::builder(num_states);
    let mut any_init = false;
    for state in 0..num_states {
        if rng.gen_bool(init_prob) {
            builder = builder.initial(state);
            any_init = true;
        }
        let out = rng.gen_range(1..=max_out);
        for _ in 0..out {
            builder = builder.edge(state, rng.gen_range(0..num_states));
        }
    }
    if !any_init {
        builder = builder.initial(rng.gen_range(0..num_states));
    }
    builder
        .build()
        .expect("generated system is total by construction")
}

/// Generates a random *everywhere implementation* of `spec`: a total
/// sub-relation of `spec`'s edges, with an initial-state subset.
///
/// By construction `everywhere_implements(&sub, &spec)` holds, and
/// `implements_from_init(&sub, &spec)` holds as well (initial states are a
/// subset).
pub fn random_subsystem<R: Rng>(rng: &mut R, spec: &FiniteSystem) -> FiniteSystem {
    let mut builder = FiniteSystem::builder(spec.num_states());
    builder = keep_total_subset(rng, spec, builder);
    let inits: Vec<usize> = spec.init().iter().collect();
    let mut any = false;
    for &init in &inits {
        if rng.gen_bool(0.7) {
            builder = builder.initial(init);
            any = true;
        }
    }
    if !any {
        if let Some(&init) = inits.choose(rng) {
            builder = builder.initial(init);
        }
    }
    builder
        .build()
        .expect("subsystem keeps at least one edge per state")
}

fn keep_total_subset<R: Rng>(
    rng: &mut R,
    spec: &FiniteSystem,
    mut builder: SystemBuilder,
) -> SystemBuilder {
    for state in 0..spec.num_states() {
        let succ: Vec<usize> = spec.successors(state).collect();
        debug_assert!(!succ.is_empty(), "spec is total");
        let keep = rng.gen_range(1..=succ.len());
        let mut chosen = succ.clone();
        chosen.shuffle(rng);
        for &to in chosen.iter().take(keep) {
            builder = builder.edge(state, to);
        }
    }
    builder
}

/// Generates a wrapper pair `(W, W')` over `num_states` states with
/// `[W' ⇒ W]` by construction: `W` is random and `W'` is a total
/// sub-relation of it.
pub fn random_wrapper_pair<R: Rng>(
    rng: &mut R,
    num_states: usize,
    max_out: usize,
) -> (FiniteSystem, FiniteSystem) {
    let w = random_system(rng, num_states, max_out, 0.8);
    let w_prime = random_subsystem(rng, &w);
    (w, w_prime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{everywhere_implements, implements_from_init};
    use graybox_rng::rngs::SmallRng;
    use graybox_rng::SeedableRng;

    #[test]
    fn random_system_is_well_formed() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let sys = random_system(&mut rng, 12, 3, 0.3);
            assert_eq!(sys.num_states(), 12);
            assert!(!sys.init().is_empty());
            for state in 0..12 {
                assert!(sys.successors(state).next().is_some());
            }
        }
    }

    #[test]
    fn random_subsystem_everywhere_implements_its_spec() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let spec = random_system(&mut rng, 10, 4, 0.5);
            let sub = random_subsystem(&mut rng, &spec);
            assert!(everywhere_implements(&sub, &spec));
            assert!(implements_from_init(&sub, &spec));
        }
    }

    #[test]
    fn random_wrapper_pair_refines() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..50 {
            let (w, w_prime) = random_wrapper_pair(&mut rng, 8, 3);
            assert!(everywhere_implements(&w_prime, &w));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_system(&mut SmallRng::seed_from_u64(5), 9, 3, 0.4);
        let b = random_system(&mut SmallRng::seed_from_u64(5), 9, 3, 0.4);
        assert_eq!(a, b);
    }
}
