//! Stabilization under weakly fair composition.
//!
//! The paper's wrapper proofs (Lemma 7: `Lspec ⊓ W` is stabilizing to
//! `Lspec`) implicitly use UNITY's execution model, where the composed
//! system's actions are scheduled **weakly fairly**: each component takes
//! steps infinitely often. Under the pure path semantics of [`box_compose`]
//! that is invisible — the box operator only *adds* computations, so a
//! wrapper could never remove a divergent cycle of the wrappee. This module
//! supplies the missing execution model.
//!
//! A [`FairComposition`] is a list of components over a shared state space;
//! its *fair computations* are the infinite paths of the edge-union graph
//! that take an edge of every component infinitely often. Stabilization to
//! a specification `A` is then checked over fair computations only.
//!
//! Decision procedure: an infinite path in a finite graph eventually stays
//! inside one strongly connected component (SCC) of the union graph. A fair
//! computation violating stabilization therefore yields an SCC that
//! contains (a) a divergent edge (not a legitimate `A`-transition) and
//! (b) for every component, at least one of that component's edges. Any
//! such SCC conversely hosts a fair violating computation (tour all the
//! required edges repeatedly). So the check is a scan over SCCs.
//!
//! # Example: a wrapper that only helps under fairness
//!
//! ```
//! use graybox_core::fairness::FairComposition;
//! use graybox_core::{is_stabilizing_to, FiniteSystem};
//!
//! // Spec/impl: state 1 is corrupt and the impl loops there forever.
//! let a = FiniteSystem::builder(2).initial(0).edges([(0, 0), (1, 1)]).build()?;
//! let c = a.clone();
//! // Wrapper: recover 1 -> 0 (skip at 0).
//! let w = FiniteSystem::builder(2).initials([0, 1]).edges([(0, 0), (1, 0)]).build()?;
//! assert!(!is_stabilizing_to(&c, &a).holds());          // impl alone: stuck
//! let composed = FairComposition::new(vec![c, w])?;
//! assert!(composed.is_stabilizing_to(&a).holds());       // fair C ⊓ W: recovers
//! # Ok::<(), graybox_core::SystemError>(())
//! ```

use std::collections::BTreeSet;

use crate::relations::StabilizationReport;
use crate::{box_compose, everywhere_implements, FiniteSystem, SystemError};

use crate::theorems::TheoremOutcome;

/// A weakly fair composition of systems over a shared state space.
#[derive(Debug, Clone)]
pub struct FairComposition {
    components: Vec<FiniteSystem>,
    union: FiniteSystem,
}

impl FairComposition {
    /// Composes the given components.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the list is empty or the components do
    /// not share a state space.
    pub fn new(components: Vec<FiniteSystem>) -> Result<Self, SystemError> {
        let mut iter = components.iter();
        let first = iter.next().ok_or(SystemError::EmptyStateSpace)?;
        let mut union = first.clone();
        for next in iter {
            union = box_compose(&union, next)?;
        }
        Ok(FairComposition { components, union })
    }

    /// Assembles a composition from components and their precomputed
    /// edge-union — the streaming GCL compiler produces both in one sweep,
    /// so re-deriving the union via repeated [`box_compose`] would double
    /// the work. The caller guarantees `union` equals the box composition
    /// of `components` (the packed compiler's differential tests assert
    /// it).
    pub(crate) fn from_parts(
        components: Vec<FiniteSystem>,
        union: FiniteSystem,
    ) -> Result<Self, SystemError> {
        if components.is_empty() {
            return Err(SystemError::EmptyStateSpace);
        }
        debug_assert!(components
            .iter()
            .all(|c| c.num_states() == union.num_states()));
        Ok(FairComposition { components, union })
    }

    /// The underlying edge-union system (the pure `⊓` of the components).
    pub fn union(&self) -> &FiniteSystem {
        &self.union
    }

    /// The composed components.
    pub fn components(&self) -> &[FiniteSystem] {
        &self.components
    }

    /// Checks "this composition is stabilizing to `a`" over *fair*
    /// computations: every infinite path of the union graph that takes each
    /// component's edges infinitely often eventually takes only legitimate
    /// `a`-transitions.
    pub fn is_stabilizing_to(&self, a: &FiniteSystem) -> StabilizationReport {
        let legitimate = a.reachable_from_init();
        if self.union.num_states() != a.num_states() {
            return StabilizationReport {
                divergent_edge: self.union.edges().iter().next(),
                legitimate_states: legitimate.clone(),
            };
        }
        // One pass over each component's edges marks, per union-SCC, how
        // many components can act inside it (an edge (u, v) is inside its
        // SCC iff scc[u] == scc[v]); one pass over the union's edges then
        // looks for a divergent inner edge of a fully-represented SCC.
        // Replaces the per-SCC edge rescans: O(Σ|E_i| + E) total. On
        // large spaces the marking fans out over disjoint component
        // subsets — each component is counted wholly by one worker, so
        // summing the per-worker counts gives the serial tally.
        let scc = self.union.scc_ids();
        let ncomp = self.components.len();
        let scc_count = self.union.scc_count();
        let workers = if self.union.num_states() >= crate::par::PAR_MIN_STATES {
            crate::sweep::available_workers().min(ncomp)
        } else {
            1
        };
        let mut present = vec![0usize; scc_count];
        if workers > 1 {
            let tasks: Vec<_> = crate::sweep::chunk_ranges(ncomp, workers, 1)
                .into_iter()
                .map(|range| {
                    let components = &self.components[range];
                    move || {
                        let mut present = vec![0usize; scc_count];
                        let mut last_seen = vec![usize::MAX; scc_count];
                        for (ci, component) in components.iter().enumerate() {
                            for (from, to) in component.edges() {
                                let id = scc[from];
                                if scc[to] == id && last_seen[id] != ci {
                                    last_seen[id] = ci;
                                    present[id] += 1;
                                }
                            }
                        }
                        present
                    }
                })
                .collect();
            for partial in crate::sweep::join_all(tasks) {
                for (sum, part) in present.iter_mut().zip(partial) {
                    *sum += part;
                }
            }
        } else {
            let mut last_seen = vec![usize::MAX; scc_count];
            for (ci, component) in self.components.iter().enumerate() {
                for (from, to) in component.edges() {
                    let id = scc[from];
                    if scc[to] == id && last_seen[id] != ci {
                        last_seen[id] = ci;
                        present[id] += 1;
                    }
                }
            }
        }
        for (from, to) in self.union.edges() {
            let id = scc[from];
            // Fairness: every component must be able to act inside the SCC.
            if scc[to] != id || present[id] != ncomp {
                continue;
            }
            let divergent =
                !(legitimate.contains(from) && legitimate.contains(to) && a.has_edge(from, to));
            if divergent {
                return StabilizationReport {
                    divergent_edge: Some((from, to)),
                    legitimate_states: legitimate.clone(),
                };
            }
        }
        StabilizationReport {
            divergent_edge: None,
            legitimate_states: legitimate.clone(),
        }
    }
}

/// Fair analogue of Theorem 1: if `[C ⇒ A]`, `[W' ⇒ W]`, and the fair
/// composition `A ⊓ W` is stabilizing to `A`, then the fair composition
/// `C ⊓ W'` is stabilizing to `A`.
///
/// (Soundness: any violating SCC of `C ∪ W'` is strongly connected in
/// `A ∪ W` too, contains the same divergent edge, a `W`-edge, and an
/// `A`-edge — contradicting the premise.)
///
/// # Errors
///
/// Returns [`SystemError`] if the systems do not share a state space.
pub fn check_fair_theorem1(
    c: &FiniteSystem,
    a: &FiniteSystem,
    w_prime: &FiniteSystem,
    w: &FiniteSystem,
) -> Result<TheoremOutcome, SystemError> {
    let aw = FairComposition::new(vec![a.clone(), w.clone()])?;
    let premises_hold = everywhere_implements(c, a)
        && everywhere_implements(w_prime, w)
        && aw.is_stabilizing_to(a).holds();
    let cw = FairComposition::new(vec![c.clone(), w_prime.clone()])?;
    Ok(TheoremOutcome {
        premises_hold,
        conclusion_holds: cw.is_stabilizing_to(a).holds(),
    })
}

/// The strongly connected components of a system's edge relation, as
/// state sets in Tarjan completion order (reverse topological). Reads the
/// SCC ids cached on the system at build time.
pub fn strongly_connected_components(sys: &FiniteSystem) -> Vec<BTreeSet<usize>> {
    let mut result = vec![BTreeSet::new(); sys.scc_count()];
    for (state, &id) in sys.scc_ids().iter().enumerate() {
        result[id].insert(state);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: usize, init: &[usize], edges: &[(usize, usize)]) -> FiniteSystem {
        FiniteSystem::builder(n)
            .initials(init.iter().copied())
            .edges(edges.iter().copied())
            .build()
            .unwrap()
    }

    #[test]
    fn sccs_of_a_ring_and_a_line() {
        let ring = sys(3, &[0], &[(0, 1), (1, 2), (2, 0)]);
        let sccs = strongly_connected_components(&ring);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], BTreeSet::from([0, 1, 2]));

        let line = sys(3, &[0], &[(0, 1), (1, 2), (2, 2)]);
        let mut sccs = strongly_connected_components(&line);
        sccs.sort();
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn sccs_partition_the_state_space() {
        let s = sys(
            6,
            &[0],
            &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (4, 4), (5, 0)],
        );
        let sccs = strongly_connected_components(&s);
        let mut all: Vec<usize> = sccs.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        assert!(sccs.contains(&BTreeSet::from([0, 1])));
        assert!(sccs.contains(&BTreeSet::from([2, 3])));
        assert!(sccs.contains(&BTreeSet::from([4])));
        assert!(sccs.contains(&BTreeSet::from([5])));
    }

    #[test]
    fn fairness_lets_the_wrapper_win() {
        let a = sys(2, &[0], &[(0, 0), (1, 1)]);
        let w = sys(2, &[0, 1], &[(0, 0), (1, 0)]);
        let fair = FairComposition::new(vec![a.clone(), w]).unwrap();
        assert!(fair.is_stabilizing_to(&a).holds());
    }

    #[test]
    fn unfair_union_does_not_stabilize() {
        // Same instance, but checked under pure path semantics: the
        // computation that loops 1 -> 1 forever is admitted.
        let a = sys(2, &[0], &[(0, 0), (1, 1)]);
        let w = sys(2, &[0, 1], &[(0, 0), (1, 0)]);
        let union = box_compose(&a, &w).unwrap();
        assert!(!crate::is_stabilizing_to(&union, &a).holds());
    }

    #[test]
    fn divergent_cycle_through_both_components_is_caught() {
        // The wrapper itself participates in a divergent cycle 1 <-> 2:
        // fairness does not save this composition.
        let a = sys(3, &[0], &[(0, 0), (1, 2), (2, 2)]);
        let w = sys(3, &[0], &[(0, 0), (2, 1), (1, 1)]);
        let fair = FairComposition::new(vec![a.clone(), w]).unwrap();
        let report = fair.is_stabilizing_to(&a);
        assert!(!report.holds());
    }

    #[test]
    fn scc_without_wrapper_edge_cannot_violate() {
        // Divergent loop at 1 uses only impl edges; the wrapper's only
        // move at 1 exits to 0. Fairness forces the exit.
        let c = sys(3, &[0], &[(0, 0), (1, 1), (2, 1)]);
        let w = sys(3, &[0], &[(0, 0), (1, 0), (2, 0)]);
        let a = sys(3, &[0], &[(0, 0), (1, 1), (2, 2)]);
        // legit = {0}; SCC {1} has divergent (1,1) but no w-edge inside.
        let fair = FairComposition::new(vec![c, w]).unwrap();
        assert!(fair.is_stabilizing_to(&a).holds());
    }

    #[test]
    fn fair_theorem1_on_a_genuinely_wrapped_instance() {
        // Spec: 0 legit; 1 and 2 corrupt with self-loops allowed.
        let a = sys(3, &[0], &[(0, 0), (1, 1), (2, 2), (1, 0), (2, 0)]);
        // Impl: subset that only self-loops when corrupt.
        let c = sys(3, &[0], &[(0, 0), (1, 1), (2, 2)]);
        // Wrapper: recovery edges (subset of spec's allowed moves? no —
        // the wrapper is its own system; it skips at 0).
        let w = sys(3, &[0, 1, 2], &[(0, 0), (1, 0), (2, 0)]);
        let out = check_fair_theorem1(&c, &a, &w, &w).unwrap();
        assert!(out.exercised());
        assert!(out.conclusion_holds);
        // And the impl alone genuinely is not stabilizing:
        assert!(!crate::is_stabilizing_to(&c, &a).holds());
    }

    #[test]
    fn empty_composition_is_rejected() {
        assert!(FairComposition::new(vec![]).is_err());
    }

    #[test]
    fn union_accessor_is_the_pure_box() {
        let a = sys(2, &[0], &[(0, 1), (1, 0)]);
        let w = sys(2, &[0], &[(0, 0), (1, 1)]);
        let fair = FairComposition::new(vec![a.clone(), w.clone()]).unwrap();
        assert_eq!(fair.union(), &box_compose(&a, &w).unwrap());
        assert_eq!(fair.components().len(), 2);
    }
}
