//! Logical time for graybox stabilization.
//!
//! This crate provides the *Environment Spec* substrate of the paper
//! "Graybox Stabilization" (Arora, Demirbas, Kulkarni; DSN 2001): totally
//! ordered timestamps produced by Lamport logical clocks, and an omniscient
//! happened-before recorder used by the trace checkers.
//!
//! The paper's *Timestamp Spec* demands that timestamps
//!
//! 1. come from a totally ordered domain (the relation `lt`), and
//! 2. respect the happened-before relation: `e hb f ⇒ ts.e < ts.f`.
//!
//! Lamport logical clocks satisfy both ([`Timestamp`] implements the total
//! order `(time, pid)` lexicographically, exactly the paper's
//! `lc.e lt lc.f ≡ lc.e < lc.f ∨ (lc.e = lc.f ∧ j < k)`).
//!
//! # Example
//!
//! ```
//! use graybox_clock::{LamportClock, ProcessId};
//!
//! let mut a = LamportClock::new(ProcessId(0));
//! let mut b = LamportClock::new(ProcessId(1));
//! let send = a.tick();          // event at process 0
//! b.witness(send);              // message received at process 1
//! let recv = b.tick();
//! assert!(send.lt(recv));       // hb implies lt
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hb;
mod lamport;
mod pid;
mod timestamp;

pub use hb::{EventRef, HbRecorder, VectorClock};
pub use lamport::LamportClock;
pub use pid::ProcessId;
pub use timestamp::Timestamp;
