use std::collections::HashMap;

use crate::ProcessId;

/// A vector clock over a fixed set of `n` processes.
///
/// Used by the omniscient [`HbRecorder`] (not by the protocol processes
/// themselves) to decide Lamport's happened-before relation exactly, which
/// the trace checkers need for Timestamp Spec and ME3 (first-come
/// first-serve).
///
/// # Example
///
/// ```
/// use graybox_clock::{ProcessId, VectorClock};
///
/// let mut a = VectorClock::new(2);
/// a.tick(ProcessId(0));
/// let mut b = VectorClock::new(2);
/// b.tick(ProcessId(1));
/// assert!(!a.dominated_by(&b) && !b.dominated_by(&a)); // concurrent
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// Creates the all-zero vector clock for `n` processes.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Advances the component of `pid` for a local event.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for this clock's process count.
    pub fn tick(&mut self, pid: ProcessId) {
        self.0[pid.index()] += 1;
    }

    /// Joins `other` into `self` (component-wise maximum).
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `self ≤ other` component-wise: every event `self` knows about,
    /// `other` knows about too.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// The component for `pid`.
    pub fn component(&self, pid: ProcessId) -> u64 {
        self.0[pid.index()]
    }
}

/// A handle to an event recorded by an [`HbRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventRef(usize);

/// Omniscient happened-before recorder.
///
/// The simulation driver reports every event (local step, send, receive) as
/// it executes; the recorder maintains exact vector clocks so trace checkers
/// can later query `e hb f`. Messages are keyed by the substrate's unique
/// message ids; a receive of an *unknown* id (e.g. a fault-injected garbage
/// message) simply contributes no causal edge, matching the intuition that a
/// corrupted message carries no legitimate causal history.
///
/// # Example
///
/// ```
/// use graybox_clock::{HbRecorder, ProcessId};
///
/// let mut rec = HbRecorder::new(2);
/// let send = rec.send_event(ProcessId(0), 7);
/// let recv = rec.receive_event(ProcessId(1), 7);
/// assert!(rec.happened_before(send, recv));
/// assert!(!rec.happened_before(recv, send));
/// ```
#[derive(Debug, Clone)]
pub struct HbRecorder {
    proc_clocks: Vec<VectorClock>,
    events: Vec<VectorClock>,
    send_clocks: HashMap<u64, VectorClock>,
}

impl HbRecorder {
    /// Creates a recorder for an `n`-process system.
    pub fn new(n: usize) -> Self {
        HbRecorder {
            proc_clocks: (0..n).map(|_| VectorClock::new(n)).collect(),
            events: Vec::new(),
            send_clocks: HashMap::new(),
        }
    }

    fn record(&mut self, pid: ProcessId) -> EventRef {
        let clock = self.proc_clocks[pid.index()].clone();
        self.events.push(clock);
        EventRef(self.events.len() - 1)
    }

    /// Records a purely local event at `pid`.
    pub fn local_event(&mut self, pid: ProcessId) -> EventRef {
        self.proc_clocks[pid.index()].tick(pid);
        self.record(pid)
    }

    /// Records a send event of message `msg_id` at `pid`.
    pub fn send_event(&mut self, pid: ProcessId, msg_id: u64) -> EventRef {
        self.proc_clocks[pid.index()].tick(pid);
        let event = self.record(pid);
        self.send_clocks
            .insert(msg_id, self.events[event.0].clone());
        event
    }

    /// Records a receive event of message `msg_id` at `pid`, joining the
    /// sender's causal history if the message is known.
    pub fn receive_event(&mut self, pid: ProcessId, msg_id: u64) -> EventRef {
        if let Some(send_clock) = self.send_clocks.get(&msg_id).cloned() {
            self.proc_clocks[pid.index()].join(&send_clock);
        }
        self.proc_clocks[pid.index()].tick(pid);
        self.record(pid)
    }

    /// Lamport's happened-before: `a hb b` iff `a`'s history is strictly
    /// contained in `b`'s.
    pub fn happened_before(&self, a: EventRef, b: EventRef) -> bool {
        let (ca, cb) = (&self.events[a.0], &self.events[b.0]);
        ca != cb && ca.dominated_by(cb)
    }

    /// True when neither event causally precedes the other.
    pub fn concurrent(&self, a: EventRef, b: EventRef) -> bool {
        !self.happened_before(a, b) && !self.happened_before(b, a) && a != b
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);
    const P2: ProcessId = ProcessId(2);

    #[test]
    fn process_order_implies_hb() {
        let mut rec = HbRecorder::new(1);
        let a = rec.local_event(P0);
        let b = rec.local_event(P0);
        assert!(rec.happened_before(a, b));
        assert!(!rec.happened_before(b, a));
    }

    #[test]
    fn message_edge_implies_hb() {
        let mut rec = HbRecorder::new(2);
        let s = rec.send_event(P0, 1);
        let r = rec.receive_event(P1, 1);
        assert!(rec.happened_before(s, r));
    }

    #[test]
    fn unrelated_events_are_concurrent() {
        let mut rec = HbRecorder::new(2);
        let a = rec.local_event(P0);
        let b = rec.local_event(P1);
        assert!(rec.concurrent(a, b));
    }

    #[test]
    fn hb_is_transitive_through_messages() {
        let mut rec = HbRecorder::new(3);
        let a = rec.local_event(P0);
        let s = rec.send_event(P0, 9);
        let r = rec.receive_event(P1, 9);
        let s2 = rec.send_event(P1, 10);
        let r2 = rec.receive_event(P2, 10);
        assert!(rec.happened_before(a, r2));
        assert!(rec.happened_before(s, s2));
        assert!(rec.happened_before(r, r2));
    }

    #[test]
    fn garbage_message_contributes_no_edge() {
        let mut rec = HbRecorder::new(2);
        let a = rec.local_event(P0);
        // Receive of a message id never sent: fault-injected garbage.
        let r = rec.receive_event(P1, 999);
        assert!(rec.concurrent(a, r));
    }

    #[test]
    fn hb_is_irreflexive() {
        let mut rec = HbRecorder::new(1);
        let a = rec.local_event(P0);
        assert!(!rec.happened_before(a, a));
        assert!(!rec.concurrent(a, a));
    }

    #[test]
    fn vector_clock_domination() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        assert!(a.dominated_by(&b) && b.dominated_by(&a));
        a.tick(P0);
        assert!(b.dominated_by(&a));
        assert!(!a.dominated_by(&b));
        b.join(&a);
        assert!(a.dominated_by(&b));
        assert_eq!(b.component(P0), 1);
    }

    #[test]
    fn len_and_is_empty_track_recorded_events() {
        let mut rec = HbRecorder::new(1);
        assert!(rec.is_empty());
        rec.local_event(P0);
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
    }
}
