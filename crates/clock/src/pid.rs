use std::fmt;

/// Identity of a process in the distributed system.
///
/// Process identities double as the tie-breaker of the paper's total order
/// `lt` on timestamps, so they are totally ordered themselves.
///
/// # Example
///
/// ```
/// use graybox_clock::ProcessId;
///
/// let j = ProcessId(0);
/// let k = ProcessId(1);
/// assert!(j < k);
/// assert_eq!(j.to_string(), "p0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the identity as a plain index, convenient for `Vec` lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Enumerates the identities `p0 .. p(n-1)` of an `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` processes.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        let n = u32::try_from(n).expect("process count exceeds u32");
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(raw: u32) -> Self {
        ProcessId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ProcessId(0) < ProcessId(1));
        assert!(ProcessId(7) > ProcessId(3));
        assert_eq!(ProcessId(4), ProcessId(4));
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(3).collect();
        assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ProcessId(9).index(), 9);
        assert_eq!(ProcessId::from(9u32), ProcessId(9));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ProcessId(12).to_string(), "p12");
    }
}
