use std::fmt;

use crate::ProcessId;

/// A logical timestamp from a totally ordered domain.
///
/// The paper's Environment Spec requires timestamps to be totally ordered by
/// the relation `lt`; Lamport's construction extends the partial order of
/// clock values with the process identity as a tie-breaker:
///
/// ```text
/// lc.e_j lt lc.f_k  ≡  lc.e_j < lc.f_k ∨ (lc.e_j = lc.f_k ∧ j < k)
/// ```
///
/// [`Ord`] on `Timestamp` implements exactly this relation, so `a < b` *is*
/// `a lt b`. Two timestamps of *distinct* processes are never equal under
/// `lt`, which the mutual-exclusion entry condition relies on.
///
/// # Example
///
/// ```
/// use graybox_clock::{ProcessId, Timestamp};
///
/// let a = Timestamp::new(3, ProcessId(0));
/// let b = Timestamp::new(3, ProcessId(1));
/// assert!(a.lt(b)); // equal clock values break ties by process id
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp {
    /// Logical clock value (Lamport counter).
    pub time: u64,
    /// Identity of the process whose event this timestamp stamps.
    pub pid: ProcessId,
}

impl Timestamp {
    /// Creates a timestamp for an event with clock value `time` at `pid`.
    pub fn new(time: u64, pid: ProcessId) -> Self {
        Timestamp { time, pid }
    }

    /// The initial timestamp `0` of a process, as required by the paper's
    /// `Init` (`∀j: REQ_j = 0 ∧ ts.j = 0`).
    pub fn zero(pid: ProcessId) -> Self {
        Timestamp { time: 0, pid }
    }

    /// The paper's total order `lt`, provided as a named method so call
    /// sites can mirror the specification text (`REQ_j lt j.REQ_k`).
    pub fn lt(self, other: Timestamp) -> bool {
        self < other
    }

    /// Returns the timestamp with `time` advanced past `other`, keeping our
    /// process identity. Used by clock `witness` operations.
    pub(crate) fn joined(self, other: Timestamp) -> Timestamp {
        Timestamp {
            time: self.time.max(other.time),
            pid: self.pid,
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.time, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(time: u64, pid: u32) -> Timestamp {
        Timestamp::new(time, ProcessId(pid))
    }

    #[test]
    fn lt_orders_by_time_first() {
        assert!(ts(1, 5).lt(ts(2, 0)));
        assert!(!ts(2, 0).lt(ts(1, 5)));
    }

    #[test]
    fn lt_breaks_ties_by_pid() {
        assert!(ts(4, 0).lt(ts(4, 1)));
        assert!(!ts(4, 1).lt(ts(4, 0)));
    }

    #[test]
    fn lt_is_irreflexive() {
        assert!(!ts(3, 3).lt(ts(3, 3)));
    }

    #[test]
    fn distinct_processes_are_always_comparable() {
        let a = ts(7, 0);
        let b = ts(7, 1);
        assert!(a.lt(b) ^ b.lt(a));
    }

    #[test]
    fn zero_is_minimal_for_a_process() {
        let z = Timestamp::zero(ProcessId(2));
        assert_eq!(z.time, 0);
        assert!(z.lt(ts(1, 2)));
    }

    #[test]
    fn display_shows_time_and_pid() {
        assert_eq!(ts(9, 1).to_string(), "9@p1");
    }

    #[test]
    fn joined_takes_max_time_keeps_pid() {
        let a = ts(3, 0);
        let b = ts(8, 1);
        let j = a.joined(b);
        assert_eq!(j, ts(8, 0));
        assert_eq!(a.joined(ts(1, 1)), ts(3, 0));
    }
}
