use crate::{ProcessId, Timestamp};

/// A Lamport logical clock, the paper's reference implementation of the
/// Environment Spec's *Timestamp Spec*.
///
/// The clock advances on every local event ([`tick`](LamportClock::tick)) and
/// absorbs remote timestamps on message receipt
/// ([`witness`](LamportClock::witness)), guaranteeing `e hb f ⇒ ts.e < ts.f`.
///
/// Because the fault model allows transient state corruption, the raw clock
/// value can also be overwritten via
/// [`set_time`](LamportClock::set_time) — legitimate protocol code never
/// calls it; fault injectors do.
///
/// # Example
///
/// ```
/// use graybox_clock::{LamportClock, ProcessId};
///
/// let mut clock = LamportClock::new(ProcessId(3));
/// let first = clock.tick();
/// let second = clock.tick();
/// assert!(first.lt(second));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LamportClock {
    pid: ProcessId,
    time: u64,
}

impl LamportClock {
    /// Creates a clock at the paper's initial value `ts.j = 0`.
    pub fn new(pid: ProcessId) -> Self {
        LamportClock { pid, time: 0 }
    }

    /// The identity of the owning process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The timestamp of the most current event at this process (`ts.j`).
    pub fn now(&self) -> Timestamp {
        Timestamp::new(self.time, self.pid)
    }

    /// Advances the clock for a new local event and returns the event's
    /// timestamp.
    pub fn tick(&mut self) -> Timestamp {
        self.time = self.time.saturating_add(1);
        self.now()
    }

    /// Absorbs a timestamp observed on a received message, so the next local
    /// event is ordered after the send (`e hb f ⇒ ts.e < ts.f`).
    ///
    /// Note this only raises the clock; the receive event itself should be
    /// stamped by a following [`tick`](LamportClock::tick).
    pub fn witness(&mut self, observed: Timestamp) {
        self.time = self.now().joined(observed).time;
    }

    /// Absorbs a remote timestamp and immediately stamps the receive event.
    /// Equivalent to `witness(observed)` followed by `tick()`.
    pub fn receive(&mut self, observed: Timestamp) -> Timestamp {
        self.witness(observed);
        self.tick()
    }

    /// Overwrites the raw clock value. **Fault injection only** — this
    /// deliberately violates monotonicity to model the paper's "transiently
    /// (and arbitrarily) corrupted" process state.
    pub fn set_time(&mut self, time: u64) {
        self.time = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_strictly_monotone() {
        let mut c = LamportClock::new(ProcessId(0));
        let mut prev = c.now();
        for _ in 0..100 {
            let next = c.tick();
            assert!(prev.lt(next));
            prev = next;
        }
    }

    #[test]
    fn witness_raises_clock_past_remote() {
        let mut c = LamportClock::new(ProcessId(0));
        c.witness(Timestamp::new(41, ProcessId(1)));
        let stamped = c.tick();
        assert_eq!(stamped.time, 42);
    }

    #[test]
    fn witness_never_lowers_clock() {
        let mut c = LamportClock::new(ProcessId(0));
        c.set_time(100);
        c.witness(Timestamp::new(5, ProcessId(1)));
        assert_eq!(c.now().time, 100);
    }

    #[test]
    fn receive_orders_after_send() {
        let mut sender = LamportClock::new(ProcessId(0));
        let mut receiver = LamportClock::new(ProcessId(1));
        let send = sender.tick();
        let recv = receiver.receive(send);
        assert!(send.lt(recv));
    }

    #[test]
    fn set_time_models_corruption() {
        let mut c = LamportClock::new(ProcessId(0));
        c.tick();
        c.tick();
        c.set_time(0);
        assert_eq!(c.now().time, 0);
    }

    #[test]
    fn tick_saturates_instead_of_wrapping() {
        let mut c = LamportClock::new(ProcessId(0));
        c.set_time(u64::MAX);
        let t = c.tick();
        assert_eq!(t.time, u64::MAX);
    }
}
