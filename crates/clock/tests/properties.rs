//! Property-based tests for timestamps, clocks, and the happened-before
//! recorder, driven by seeded `graybox-rng` loops so they run offline.

use graybox_clock::{HbRecorder, LamportClock, ProcessId, Timestamp};
use graybox_rng::rngs::SmallRng;
use graybox_rng::{Rng, SeedableRng};

fn ts(rng: &mut SmallRng) -> Timestamp {
    Timestamp::new(rng.gen_range(0u64..200), ProcessId(rng.gen_range(0u32..6)))
}

#[test]
fn lt_is_irreflexive_total_transitive() {
    for seed in 0..1_000u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b, c) = (ts(&mut rng), ts(&mut rng), ts(&mut rng));
        assert!(!a.lt(a), "seed {seed}");
        if a != b {
            assert!(a.lt(b) ^ b.lt(a), "seed {seed}");
        }
        if a.lt(b) && b.lt(c) {
            assert!(a.lt(c), "seed {seed}");
        }
    }
}

#[test]
fn lt_agrees_with_derived_ord() {
    for seed in 0..1_000u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b) = (ts(&mut rng), ts(&mut rng));
        assert_eq!(a.lt(b), a < b, "seed {seed}");
    }
}

#[test]
fn distinct_pids_never_tie() {
    for time in 0u64..50 {
        for p in 0u32..6 {
            for q in 0u32..6 {
                if p == q {
                    continue;
                }
                let a = Timestamp::new(time, ProcessId(p));
                let b = Timestamp::new(time, ProcessId(q));
                assert!(a.lt(b) ^ b.lt(a), "time {time} pids {p},{q}");
            }
        }
    }
}

#[test]
fn clock_now_is_monotone_under_any_event_mix() {
    for seed in 0..1_000u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut clock = LamportClock::new(ProcessId(0));
        let mut previous = clock.now();
        for _ in 0..50 {
            match rng.gen_range(0..3u8) {
                0 => {
                    clock.tick();
                }
                1 => clock.witness(Timestamp::new(rng.gen_range(0..100), ProcessId(1))),
                _ => {
                    clock.receive(Timestamp::new(rng.gen_range(0..100), ProcessId(1)));
                }
            }
            let now = clock.now();
            assert!(now >= previous, "seed {seed}: clock went backwards");
            previous = now;
        }
    }
}

#[test]
fn hb_is_a_strict_partial_order() {
    for seed in 0..500u64 {
        // Build a random event history over 3 processes, then check
        // irreflexivity, antisymmetry, transitivity on all event pairs.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rec = HbRecorder::new(3);
        let mut events = Vec::new();
        let mut sent: Vec<u64> = Vec::new();
        let mut next_msg = 0u64;
        for _ in 0..24 {
            let pid = ProcessId(rng.gen_range(0..3));
            match rng.gen_range(0..3u8) {
                0 => events.push(rec.local_event(pid)),
                1 => {
                    next_msg += 1;
                    sent.push(next_msg);
                    events.push(rec.send_event(pid, next_msg));
                }
                _ => {
                    if let Some(&msg) = sent.last() {
                        events.push(rec.receive_event(pid, msg));
                    } else {
                        events.push(rec.local_event(pid));
                    }
                }
            }
        }
        for &a in &events {
            assert!(!rec.happened_before(a, a), "seed {seed}");
            for &b in &events {
                if rec.happened_before(a, b) {
                    assert!(
                        !rec.happened_before(b, a),
                        "seed {seed}: hb not antisymmetric"
                    );
                }
                for &c in &events {
                    if rec.happened_before(a, b) && rec.happened_before(b, c) {
                        assert!(rec.happened_before(a, c), "seed {seed}: hb not transitive");
                    }
                }
            }
        }
    }
}

#[test]
fn same_process_events_are_totally_ordered() {
    for count in 2usize..20 {
        let mut rec = HbRecorder::new(1);
        let events: Vec<_> = (0..count).map(|_| rec.local_event(ProcessId(0))).collect();
        for (i, &a) in events.iter().enumerate() {
            for &b in &events[i + 1..] {
                assert!(rec.happened_before(a, b));
            }
        }
    }
}
