//! Property-based tests for timestamps, clocks, and the happened-before
//! recorder.

use graybox_clock::{HbRecorder, LamportClock, ProcessId, Timestamp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn ts() -> impl Strategy<Value = Timestamp> {
    (0u64..200, 0u32..6).prop_map(|(time, pid)| Timestamp::new(time, ProcessId(pid)))
}

proptest! {
    #[test]
    fn lt_is_irreflexive_total_transitive(a in ts(), b in ts(), c in ts()) {
        prop_assert!(!a.lt(a));
        if a != b {
            prop_assert!(a.lt(b) ^ b.lt(a));
        }
        if a.lt(b) && b.lt(c) {
            prop_assert!(a.lt(c));
        }
    }

    #[test]
    fn lt_agrees_with_derived_ord(a in ts(), b in ts()) {
        prop_assert_eq!(a.lt(b), a < b);
    }

    #[test]
    fn distinct_pids_never_tie(time in 0u64..50, p in 0u32..6, q in 0u32..6) {
        prop_assume!(p != q);
        let a = Timestamp::new(time, ProcessId(p));
        let b = Timestamp::new(time, ProcessId(q));
        prop_assert!(a.lt(b) ^ b.lt(a));
    }

    #[test]
    fn clock_now_is_monotone_under_any_event_mix(seed in 0u64..1_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut clock = LamportClock::new(ProcessId(0));
        let mut previous = clock.now();
        for _ in 0..50 {
            match rng.gen_range(0..3u8) {
                0 => {
                    clock.tick();
                }
                1 => clock.witness(Timestamp::new(rng.gen_range(0..100), ProcessId(1))),
                _ => {
                    clock.receive(Timestamp::new(rng.gen_range(0..100), ProcessId(1)));
                }
            }
            let now = clock.now();
            prop_assert!(now >= previous, "clock went backwards");
            previous = now;
        }
    }

    #[test]
    fn hb_is_a_strict_partial_order(seed in 0u64..500) {
        // Build a random event history over 3 processes, then check
        // irreflexivity, antisymmetry, transitivity on all event pairs.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rec = HbRecorder::new(3);
        let mut events = Vec::new();
        let mut sent: Vec<u64> = Vec::new();
        let mut next_msg = 0u64;
        for _ in 0..24 {
            let pid = ProcessId(rng.gen_range(0..3));
            match rng.gen_range(0..3u8) {
                0 => events.push(rec.local_event(pid)),
                1 => {
                    next_msg += 1;
                    sent.push(next_msg);
                    events.push(rec.send_event(pid, next_msg));
                }
                _ => {
                    if let Some(&msg) = sent.last() {
                        events.push(rec.receive_event(pid, msg));
                    } else {
                        events.push(rec.local_event(pid));
                    }
                }
            }
        }
        for &a in &events {
            prop_assert!(!rec.happened_before(a, a));
            for &b in &events {
                if rec.happened_before(a, b) {
                    prop_assert!(!rec.happened_before(b, a), "hb not antisymmetric");
                }
                for &c in &events {
                    if rec.happened_before(a, b) && rec.happened_before(b, c) {
                        prop_assert!(rec.happened_before(a, c), "hb not transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn same_process_events_are_totally_ordered(count in 2usize..20) {
        let mut rec = HbRecorder::new(1);
        let events: Vec<_> = (0..count).map(|_| rec.local_event(ProcessId(0))).collect();
        for (i, &a) in events.iter().enumerate() {
            for &b in &events[i + 1..] {
                assert!(rec.happened_before(a, b));
            }
        }
    }
}
