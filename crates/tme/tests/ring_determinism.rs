//! Record/replay bit-exactness matrix for the scalable ring-TME model on
//! the timer-wheel engine, plus a wheel-vs-reference-heap differential.
//!
//! The matrix runs n ∈ {10, 10³, 10⁴} under FIFO and non-FIFO delivery,
//! firing **all nine failpoint sites** on a fixed cadence, and checks:
//!
//! 1. two identical recorded runs serialize to byte-identical oplogs;
//! 2. replaying the oplog on a fresh simulation finishes cleanly;
//! 3. every failpoint site actually fired (the schedule is not vacuous).
//!
//! The differential test records the same workload on the default
//! [`TimerWheel`] engine and on the retained [`HeapQueue`] reference
//! scheduler: identical oplogs mean identical pop order — the engines are
//! step-identical, not merely outcome-identical.
//!
//! [`TimerWheel`]: graybox_simnet::TimerWheel
//! [`HeapQueue`]: graybox_simnet::HeapQueue

use graybox_clock::ProcessId;
use graybox_simnet::queue::EventQueue;
use graybox_simnet::{failpoint, Corruptible, OpLog, SimConfig, SimTime, Simulation};
use graybox_tme::{ring, RingConfig, RingMsg, RingProc, TmeClient};

fn config(n: u32, fifo: bool, seed: u64) -> (Vec<RingProc>, SimConfig) {
    let cfg = RingConfig {
        // θ well above one circulation so the fault schedule, not
        // spurious regeneration noise, dominates the run.
        theta: u64::from(n) * 8,
        eat_for: 3,
    };
    let sim_cfg = SimConfig {
        seed,
        fifo,
        ..SimConfig::default()
    };
    (ring(n, cfg), sim_cfg)
}

/// Fires every one of the nine failpoint sites exactly once, with all
/// targeting decisions routed through the oplog layer (`draw_fault_in`),
/// so the burst replays bit-exactly.
fn fault_burst<Q: EventQueue>(
    sim: &mut Simulation<RingProc, Q>,
    rng: &mut graybox_rng::rngs::SmallRng,
) {
    let n = u64::try_from(sim.len()).unwrap();
    let from = ProcessId(u32::try_from(sim.draw_fault_in(rng, 0, n - 1)).unwrap());
    let to = ProcessId((from.0 + 1) % u32::try_from(n).unwrap());

    // Two garbage injections give the channel ≥ 2 messages, so every
    // index-targeting primitive below is guaranteed to hit.
    for _ in 0..2 {
        let mut payload = RingMsg { epoch: 0 };
        payload.corrupt(&mut sim.fault_entropy(rng));
        sim.inject_message(from, to, payload); // msg.inject
    }
    assert!(sim.reorder_messages(from, to, 0, 1)); // channel.reorder
    assert!(sim.mutate_message(from, to, 0, |m| m.epoch ^= 1)); // msg.corrupt
    assert!(sim.duplicate_message(from, to, 0).is_some()); // channel.duplicate
    assert!(sim.drop_message(from, to, 0).is_some()); // channel.drop
    assert!(sim.flush_channel(from, to) >= 2); // channel.flush

    let pid = ProcessId(u32::try_from(sim.draw_fault_in(rng, 0, n - 1)).unwrap());
    sim.corrupt_process(pid); // process.corrupt

    let reset = ProcessId(u32::try_from(sim.draw_fault_in(rng, 0, n - 1)).unwrap());
    let ring_n = u32::try_from(sim.len()).unwrap();
    *sim.process_mut(reset) = RingProc::new(reset, ring_n, RingConfig::default());
    failpoint!(
        sim,
        graybox_simnet::failpoint::PROCESS_RESET,
        "reset {reset} to Init"
    ); // process.reset

    let until = sim.now() + 40;
    sim.boost_delays(2, until); // sim.delay
}

enum Entropy {
    Record,
    Replay(OpLog),
}

/// Drives one deterministic campaign: staggered requests, a fixed number
/// of steps, and a nine-site fault burst every 97 steps. Returns the
/// recorded oplog (when recording) after asserting the run's invariants.
fn campaign<Q: EventQueue>(
    mut sim: Simulation<RingProc, Q>,
    n: u32,
    entropy: Entropy,
) -> Option<OpLog> {
    let replaying = match entropy {
        Entropy::Record => {
            sim.start_recording();
            false
        }
        Entropy::Replay(log) => {
            sim.begin_replay(log);
            true
        }
    };
    let mut rng = {
        use graybox_rng::SeedableRng;
        graybox_rng::rngs::SmallRng::seed_from_u64(0xFA117)
    };
    // A sprinkle of hungry processes across the ring.
    for i in 0..n.min(64) {
        sim.schedule_client(
            SimTime::from(1 + u64::from(i) * 3),
            ProcessId((i * 37) % n),
            TmeClient::Request { eat_for: 2 },
        );
    }
    let steps = 2 * u64::from(n) + 2_000;
    let mut executed = 0u64;
    while executed < steps && sim.step_quiet() {
        executed += 1;
        if executed.is_multiple_of(97) && executed / 97 <= 8 {
            fault_burst(&mut sim, &mut rng);
        }
    }
    // The schedule fired every one of the nine sites.
    for site in graybox_simnet::failpoint::ALL_SITES {
        assert!(
            sim.failpoints().hits(site) > 0,
            "site {site} never fired (n={n})"
        );
    }
    if replaying {
        sim.finish_replay()
            .expect("replay matches its own recording");
        None
    } else {
        Some(sim.take_oplog().expect("was recording"))
    }
}

#[test]
fn record_replay_matrix_is_bit_exact() {
    for n in [10u32, 1_000, 10_000] {
        for fifo in [true, false] {
            let seed = 0xD0_0D + u64::from(n) + u64::from(fifo);
            let build = || {
                let (procs, cfg) = config(n, fifo, seed);
                Simulation::new(procs, cfg)
            };
            let log_a = campaign(build(), n, Entropy::Record).unwrap();
            let log_b = campaign(build(), n, Entropy::Record).unwrap();
            assert_eq!(
                log_a.to_text(),
                log_b.to_text(),
                "recording is not deterministic (n={n}, fifo={fifo})"
            );
            campaign(build(), n, Entropy::Replay(log_a));
        }
    }
}

#[test]
fn wheel_and_heap_engines_record_identical_oplogs() {
    for fifo in [true, false] {
        let n = 1_000u32;
        let seed = 0xBEEF + u64::from(fifo);
        let wheel_log = {
            let (procs, cfg) = config(n, fifo, seed);
            campaign(Simulation::new(procs, cfg), n, Entropy::Record).unwrap()
        };
        let heap_log = {
            let (procs, cfg) = config(n, fifo, seed);
            let sim: graybox_simnet::ReferenceSimulation<RingProc> =
                Simulation::with_queue(procs, cfg);
            campaign(sim, n, Entropy::Record).unwrap()
        };
        // Identical oplogs pin the pop order event-for-event: the wheel
        // is step-identical to the reference heap, not merely
        // outcome-identical.
        assert_eq!(wheel_log.to_text(), heap_log.to_text(), "fifo={fifo}");
    }
}

#[test]
fn cross_engine_replay_works_both_ways() {
    // A log recorded on the wheel replays on the heap and vice versa —
    // the oplog format is engine-agnostic.
    let n = 200u32;
    let (procs, cfg) = config(n, true, 77);
    let wheel_log = campaign(Simulation::new(procs, cfg), n, Entropy::Record).unwrap();

    let (procs, cfg) = config(n, true, 77);
    let heap: graybox_simnet::ReferenceSimulation<RingProc> = Simulation::with_queue(procs, cfg);
    campaign(heap, n, Entropy::Replay(wheel_log));
}
