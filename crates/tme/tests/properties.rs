//! Property-based tests across the three `Lspec` implementations: safety
//! under random workloads, liveness in fault-free runs, and structural
//! sanity of corruption. Seeded `graybox-rng` loops keep the suite
//! runnable with no registry access.

use graybox_clock::ProcessId;
use graybox_rng::rngs::SmallRng;
use graybox_rng::{Rng, SeedableRng};
use graybox_simnet::{Corruptible, SimConfig, SimTime, Simulation};
use graybox_tme::{
    Implementation, LspecView, Mode, TmeIntrospect, TmeProcess, Workload, WorkloadConfig,
};

const IMPLEMENTATIONS: [Implementation; 3] = [
    Implementation::RicartAgrawala,
    Implementation::Lamport,
    Implementation::AltRicartAgrawala,
];

fn pick_implementation(rng: &mut SmallRng) -> Implementation {
    IMPLEMENTATIONS[rng.gen_range(0..IMPLEMENTATIONS.len())]
}

fn build(implementation: Implementation, n: usize, seed: u64) -> Simulation<TmeProcess> {
    let procs = (0..u32::try_from(n).unwrap())
        .map(|i| TmeProcess::new(implementation, ProcessId(i), n))
        .collect();
    Simulation::new(procs, SimConfig::with_seed(seed))
}

#[test]
fn me1_holds_stepwise_for_random_workloads() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(case ^ 0x7E0);
        let implementation = pick_implementation(&mut rng);
        let seed = rng.gen_range(0u64..500);
        let n = rng.gen_range(2usize..5);
        let mut sim = build(implementation, n, seed);
        Workload::generate(
            WorkloadConfig {
                n,
                requests_per_process: 3,
                mean_think: 20,
                eat_for: 3,
                start: 1,
            },
            seed,
        )
        .apply(&mut sim);
        while sim.peek_time().is_some_and(|t| t <= SimTime::from(2_000)) {
            sim.step();
            let eating = sim.processes().filter(|p| p.mode().is_eating()).count();
            assert!(
                eating <= 1,
                "{implementation} violated ME1 at {} (case {case})",
                sim.now()
            );
        }
    }
}

#[test]
fn every_first_request_is_served() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(case ^ 0x7E1);
        let implementation = pick_implementation(&mut rng);
        let seed = rng.gen_range(0u64..300);
        let n = rng.gen_range(2usize..5);
        let mut sim = build(implementation, n, seed);
        Workload::generate(
            WorkloadConfig {
                n,
                requests_per_process: 1,
                mean_think: 30,
                eat_for: 3,
                start: 1,
            },
            seed,
        )
        .apply(&mut sim);
        sim.run_until(SimTime::from(3_000));
        for p in sim.processes() {
            assert_eq!(
                p.entries(),
                1,
                "{} starved under {implementation} (case {case})",
                LspecView::lspec_id(p)
            );
            assert_eq!(p.mode(), Mode::Thinking, "case {case}");
        }
    }
}

#[test]
fn corruption_is_always_type_valid() {
    for case in 0..48u64 {
        let mut outer = SmallRng::seed_from_u64(case ^ 0x7E2);
        let implementation = pick_implementation(&mut outer);
        let seed = outer.gen_range(0u64..500);
        let n = outer.gen_range(2usize..6);
        let mut p = TmeProcess::new(implementation, ProcessId(0), n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..8 {
            p.corrupt(&mut rng);
            let snap = p.snapshot();
            assert_eq!(snap.pid, ProcessId(0), "case {case}");
            assert_eq!(snap.precedes.len(), n, "case {case}");
            assert_eq!(snap.local_req.len(), n, "case {case}");
            assert!(!snap.precedes[0], "own slot must be false (case {case})");
            for copy in snap.local_req.iter().flatten() {
                assert!(copy.pid.index() < n, "case {case}");
            }
            // The Lspec view stays callable and consistent with itself.
            for k in ProcessId::all(n) {
                let precedes = p.my_req_precedes(k);
                assert_eq!(precedes, snap.precedes[k.index()], "case {case}");
            }
        }
    }
}

#[test]
fn snapshot_mode_matches_view_mode() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(case ^ 0x7E3);
        let implementation = pick_implementation(&mut rng);
        let seed = rng.gen_range(0u64..200);
        let n = 3;
        let mut sim = build(implementation, n, seed);
        Workload::generate(
            WorkloadConfig {
                n,
                requests_per_process: 2,
                mean_think: 15,
                eat_for: 2,
                start: 1,
            },
            seed,
        )
        .apply(&mut sim);
        while sim.peek_time().is_some_and(|t| t <= SimTime::from(600)) {
            sim.step();
            for p in sim.processes() {
                assert_eq!(p.snapshot().mode, LspecView::mode(p), "case {case}");
                assert_eq!(p.snapshot().req, p.req(), "case {case}");
            }
        }
    }
}
