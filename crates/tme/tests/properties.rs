//! Property-based tests across the three `Lspec` implementations: safety
//! under random workloads, liveness in fault-free runs, and structural
//! sanity of corruption.

use graybox_clock::ProcessId;
use graybox_simnet::{Corruptible, SimConfig, SimTime, Simulation};
use graybox_tme::{
    Implementation, LspecView, Mode, TmeIntrospect, TmeProcess, Workload, WorkloadConfig,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn implementation_strategy() -> impl Strategy<Value = Implementation> {
    prop_oneof![
        Just(Implementation::RicartAgrawala),
        Just(Implementation::Lamport),
        Just(Implementation::AltRicartAgrawala),
    ]
}

fn build(implementation: Implementation, n: usize, seed: u64) -> Simulation<TmeProcess> {
    let procs = (0..n as u32)
        .map(|i| TmeProcess::new(implementation, ProcessId(i), n))
        .collect();
    Simulation::new(procs, SimConfig::with_seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn me1_holds_stepwise_for_random_workloads(
        implementation in implementation_strategy(),
        seed in 0u64..500,
        n in 2usize..5,
    ) {
        let mut sim = build(implementation, n, seed);
        Workload::generate(
            WorkloadConfig { n, requests_per_process: 3, mean_think: 20, eat_for: 3, start: 1 },
            seed,
        )
        .apply(&mut sim);
        while sim.peek_time().is_some_and(|t| t <= SimTime::from(2_000)) {
            sim.step();
            let eating = sim.processes().filter(|p| p.mode().is_eating()).count();
            prop_assert!(eating <= 1, "{implementation} violated ME1 at {}", sim.now());
        }
    }

    #[test]
    fn every_first_request_is_served(
        implementation in implementation_strategy(),
        seed in 0u64..300,
        n in 2usize..5,
    ) {
        let mut sim = build(implementation, n, seed);
        Workload::generate(
            WorkloadConfig { n, requests_per_process: 1, mean_think: 30, eat_for: 3, start: 1 },
            seed,
        )
        .apply(&mut sim);
        sim.run_until(SimTime::from(3_000));
        for p in sim.processes() {
            prop_assert_eq!(p.entries(), 1, "{} starved under {}", LspecView::lspec_id(p), implementation);
            prop_assert_eq!(p.mode(), Mode::Thinking);
        }
    }

    #[test]
    fn corruption_is_always_type_valid(
        implementation in implementation_strategy(),
        seed in 0u64..500,
        n in 2usize..6,
    ) {
        let mut p = TmeProcess::new(implementation, ProcessId(0), n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..8 {
            p.corrupt(&mut rng);
            let snap = p.snapshot();
            prop_assert_eq!(snap.pid, ProcessId(0));
            prop_assert_eq!(snap.precedes.len(), n);
            prop_assert_eq!(snap.local_req.len(), n);
            prop_assert!(!snap.precedes[0], "own slot must be false");
            for copy in snap.local_req.iter().flatten() {
                prop_assert!(copy.pid.index() < n);
            }
            // The Lspec view stays callable and consistent with itself.
            for k in ProcessId::all(n) {
                let precedes = p.my_req_precedes(k);
                prop_assert_eq!(precedes, snap.precedes[k.index()]);
            }
        }
    }

    #[test]
    fn snapshot_mode_matches_view_mode(
        implementation in implementation_strategy(),
        seed in 0u64..200,
    ) {
        let n = 3;
        let mut sim = build(implementation, n, seed);
        Workload::generate(
            WorkloadConfig { n, requests_per_process: 2, mean_think: 15, eat_for: 2, start: 1 },
            seed,
        )
        .apply(&mut sim);
        while sim.peek_time().is_some_and(|t| t <= SimTime::from(600)) {
            sim.step();
            for p in sim.processes() {
                prop_assert_eq!(p.snapshot().mode, LspecView::mode(p));
                prop_assert_eq!(p.snapshot().req, p.req());
            }
        }
    }
}
