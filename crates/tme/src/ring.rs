//! Token-ring mutual exclusion with θ-timed regeneration — the O(1)
//! per-process TME model used for 10³–10⁶-process scale experiments.
//!
//! See [`RingProc`] for the protocol and the stabilization argument, and
//! the `theta-sweep` experiment in `graybox-experiments` for the
//! θ-tuning curves this model exists to measure.

use graybox_clock::ProcessId;
use graybox_rng::RngCore;
use graybox_simnet::{Context, Corruptible, Process, SimTime, TimerTag, TimerTagExt};

use crate::{Mode, TmeClient, RELEASE_TIMER};

/// Timer tag of the ring's θ-regeneration heartbeat. Lives in the wrapper
/// namespace (`>= WRAPPER_BASE`): the regeneration rule *is* the stabilizing
/// wrapper of this protocol, fused into the process for scale.
pub const REGEN_TIMER: TimerTag = TimerTag::WRAPPER_BASE;

/// Tuning parameters of a [`RingProc`].
///
/// `theta` is the paper's θ: the timeout after which a process that has
/// not seen the token presumes it lost and regenerates it. The θ-sweep
/// experiments chart the tradeoff this knob controls — small θ recovers
/// from token loss quickly but fires spurious regenerations whenever a
/// legitimate circulation takes longer than θ (message overhead), large θ
/// never fires spuriously but leaves the ring dead for a long time after
/// a real loss (recovery latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Regeneration timeout in ticks. Must comfortably exceed one token
    /// circulation (≈ `n ×` mean hop delay) to avoid spurious regens.
    pub theta: u64,
    /// Default critical-section duration for requests that do not carry
    /// their own (and the duration used after corruption repair).
    pub eat_for: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            theta: 1024,
            eat_for: 4,
        }
    }
}

/// The circulating token. The epoch is `(round << 32) | regenerator-pid`:
/// regenerating increments the round, so any surviving older token — or a
/// lower-pid token regenerated in the same round — compares stale and is
/// dropped on receipt. Total order on epochs ⇒ at most one token wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingMsg {
    /// `(round << 32) | pid` of the regeneration that minted this token.
    pub epoch: u64,
}

/// Per-process counters of a [`RingProc`], for the θ-sweep curves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Critical-section entries.
    pub entries: u64,
    /// Token regenerations fired by this process.
    pub regens: u64,
    /// Stale (lower-epoch) tokens dropped on receipt.
    pub stale: u64,
    /// Valid tokens received while already eating — the signature of two
    /// live tokens, i.e. a transient mutual-exclusion hazard window.
    pub overlaps: u64,
    /// Total hungry→eating wait, summed over entries.
    pub wait_sum: u64,
    /// Worst single hungry→eating wait.
    pub wait_max: u64,
}

/// Token-ring mutual exclusion with θ-timed token regeneration — the
/// workspace's *scalable* TME model.
///
/// The timestamp implementations ([`crate::RaMe`] and friends) broadcast
/// to all peers and hold `O(n)` state per process, so an n-process system
/// costs `O(n²)` memory and messages — fine for verifying the paper's
/// claims at n ≤ 5, hopeless at n = 10⁶. `RingProc` holds `O(1)` state
/// (two u64s of protocol state plus counters) and sends `O(1)` messages
/// per event: a single token circulates pid-order around the ring and its
/// holder may eat.
///
/// Token loss (the §3.1 fault model: drop, flush, corruption of the
/// eating process) is repaired by the θ rule: a process that has seen no
/// token for θ ticks mints a fresh one with a higher epoch, sending it
/// *to itself through its own channel* so the regenerated token is itself
/// subject to the fault model. Duplicate tokens from concurrent
/// regenerations are resolved by the epoch order — stale tokens are
/// dropped on first receipt by a process that has seen a higher epoch.
/// Repeated regeneration backs off exponentially (up to 8θ) so a
/// partitioned-looking ring does not flood itself.
#[derive(Debug, Clone)]
pub struct RingProc {
    id: ProcessId,
    n: u32,
    cfg: RingConfig,
    mode: Mode,
    /// Highest token epoch witnessed (adopted on receipt, bumped on regen).
    epoch: u64,
    /// Last time a valid token was seen (received or forwarded).
    last_token_at: SimTime,
    /// When the current hunger began (valid while hungry).
    hungry_since: SimTime,
    /// Current regeneration timeout; θ after a token sighting, doubling
    /// per regeneration up to 8θ.
    backoff: u64,
    /// Remaining eat duration for the current/next critical section.
    eat_for: u64,
    stats: RingStats,
}

impl RingProc {
    /// Creates process `id` of an `n`-process ring. In the initial state
    /// everyone is thinking with epoch 0; process 0 mints the first token
    /// at start.
    pub fn new(id: ProcessId, n: u32, cfg: RingConfig) -> Self {
        assert!(n > 0, "a ring needs at least one process");
        assert!(id.0 < n, "{id} outside ring of {n}");
        RingProc {
            id,
            n,
            cfg,
            mode: Mode::Thinking,
            epoch: 0,
            last_token_at: SimTime::ZERO,
            hungry_since: SimTime::ZERO,
            backoff: cfg.theta,
            eat_for: cfg.eat_for,
            stats: RingStats::default(),
        }
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Highest token epoch this process has witnessed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// This process's counters.
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    fn successor(&self) -> ProcessId {
        ProcessId((self.id.0 + 1) % self.n)
    }

    fn theta(&self) -> u64 {
        self.cfg.theta.max(1)
    }

    fn forward(&mut self, ctx: &mut Context<RingMsg>) {
        ctx.send(self.successor(), RingMsg { epoch: self.epoch });
        self.last_token_at = ctx.now();
    }

    fn enter(&mut self, ctx: &mut Context<RingMsg>) {
        self.mode = Mode::Eating;
        self.stats.entries += 1;
        let waited = ctx.now().since(self.hungry_since);
        self.stats.wait_sum = self.stats.wait_sum.saturating_add(waited);
        self.stats.wait_max = self.stats.wait_max.max(waited);
        ctx.set_timer(RELEASE_TIMER, self.eat_for.max(1));
    }

    fn arm_regen(&self, ctx: &mut Context<RingMsg>, delay: u64) {
        ctx.set_timer(REGEN_TIMER, delay.max(1));
    }
}

impl Process for RingProc {
    type Msg = RingMsg;
    type Client = TmeClient;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut Context<RingMsg>) {
        if self.id.0 == 0 {
            // Mint the inaugural token; it travels 0 → 1 → … around the
            // ring. Sent through the channel, so "channels improperly
            // initialized" faults can eat it before anyone ever sees it.
            self.forward(ctx);
        }
        // Deterministic per-process jitter so a million regen timers do
        // not all land on the same tick.
        self.arm_regen(ctx, self.theta() + u64::from(self.id.0 % 61));
    }

    fn on_message(&mut self, _from: ProcessId, msg: RingMsg, ctx: &mut Context<RingMsg>) {
        if msg.epoch < self.epoch {
            self.stats.stale += 1;
            return; // an older token lost the regeneration race: drop it
        }
        self.epoch = msg.epoch;
        self.last_token_at = ctx.now();
        self.backoff = self.theta();
        match self.mode {
            Mode::Eating => {
                // Two live tokens reached us. Adopt the higher epoch and
                // swallow the extra token: we already hold one (ours will
                // be forwarded at release, carrying the adopted epoch).
                self.stats.overlaps += 1;
            }
            Mode::Hungry => self.enter(ctx),
            Mode::Thinking => self.forward(ctx),
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<RingMsg>) {
        match tag {
            RELEASE_TIMER if self.mode.is_eating() => {
                self.mode = Mode::Thinking;
                self.forward(ctx);
            }
            REGEN_TIMER => {
                let idle = ctx.now().since(self.last_token_at);
                if idle >= self.backoff && !self.mode.is_eating() {
                    // θ expired with no token sighting: presume it lost
                    // and mint a successor epoch. The new token is sent to
                    // *ourselves through our own channel* so it, too, can
                    // be dropped, delayed, or corrupted.
                    let round = self.epoch >> 32;
                    self.epoch = ((round + 1) << 32) | u64::from(self.id.0);
                    self.stats.regens += 1;
                    ctx.send(self.id, RingMsg { epoch: self.epoch });
                    self.last_token_at = ctx.now();
                    self.backoff = self
                        .backoff
                        .saturating_mul(2)
                        .min(self.theta().saturating_mul(8));
                    self.arm_regen(ctx, self.backoff);
                } else {
                    // Not yet due (or busy eating): check again when the
                    // current backoff window could actually have elapsed.
                    self.arm_regen(ctx, self.backoff.saturating_sub(idle));
                }
            }
            _ => {}
        }
    }

    fn on_client(&mut self, event: TmeClient, ctx: &mut Context<RingMsg>) {
        match event {
            TmeClient::Request { eat_for } => {
                if self.mode.is_thinking() {
                    self.mode = Mode::Hungry;
                    self.hungry_since = ctx.now();
                    self.eat_for = eat_for.max(1);
                }
            }
            TmeClient::Release => {
                if self.mode.is_eating() {
                    self.mode = Mode::Thinking;
                    self.forward(ctx);
                }
            }
        }
    }
}

impl Corruptible for RingProc {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        // Arbitrary type-valid protocol state; identity, ring size, config
        // and the experiment counters are outside the modelled state space.
        self.mode.corrupt(rng);
        self.epoch = u64::from(rng.next_u32() % 8) << 32 | u64::from(rng.next_u32() % self.n);
        let mut t = 0u64;
        t.corrupt(rng);
        self.last_token_at = SimTime::from(t % (self.theta() * 4));
        self.hungry_since = self.last_token_at;
        self.backoff = (u64::from(rng.next_u32()) % self.theta().saturating_mul(8)).max(1);
        self.eat_for = u64::from(rng.next_u32() % 16).max(1);
    }
}

impl Corruptible for RingMsg {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        self.epoch.corrupt(rng);
    }
}

/// Builds an `n`-process ring with the given config.
pub fn ring(n: u32, cfg: RingConfig) -> Vec<RingProc> {
    (0..n)
        .map(|i| RingProc::new(ProcessId(i), n, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox_simnet::{SimConfig, Simulation};

    fn sim(n: u32, theta: u64, seed: u64) -> Simulation<RingProc> {
        let cfg = RingConfig { theta, eat_for: 3 };
        Simulation::new(ring(n, cfg), SimConfig::with_seed(seed))
    }

    fn total_entries(s: &Simulation<RingProc>) -> u64 {
        s.processes().map(|p| p.stats().entries).sum()
    }

    fn total_regens(s: &Simulation<RingProc>) -> u64 {
        s.processes().map(|p| p.stats().regens).sum()
    }

    #[test]
    fn token_circulates_and_grants_every_request() {
        let mut s = sim(8, 512, 1);
        for i in 0..8 {
            s.schedule_client(
                SimTime::from(1 + u64::from(i)),
                ProcessId(i),
                TmeClient::Request { eat_for: 3 },
            );
        }
        s.run_until(SimTime::from(2_000));
        for p in s.processes() {
            assert_eq!(p.stats().entries, 1, "{} starved", p.id());
            assert!(p.mode().is_thinking());
        }
        // θ far above circulation time: no regeneration fired.
        assert_eq!(total_regens(&s), 0);
    }

    #[test]
    fn mutual_exclusion_holds_throughout_a_faultless_run() {
        let mut s = sim(5, 512, 2);
        for i in 0..5 {
            s.schedule_client(
                SimTime::from(1),
                ProcessId(i),
                TmeClient::Request { eat_for: 4 },
            );
        }
        while s.peek_time().is_some_and(|t| t <= SimTime::from(3_000)) {
            s.step();
            let eating = s.processes().filter(|p| p.mode().is_eating()).count();
            assert!(eating <= 1, "two eaters at {}", s.now());
        }
        assert_eq!(total_entries(&s), 5);
    }

    #[test]
    fn lost_token_is_regenerated_within_theta_backoff() {
        let mut s = sim(4, 64, 3);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(2),
            TmeClient::Request { eat_for: 2 },
        );
        // Execute the start events (time 0) so the inaugural token is in
        // flight, then eat it before it leaves process 0's channel.
        while s.peek_time() == Some(SimTime::ZERO) {
            s.step();
        }
        assert_eq!(s.flush_channel(ProcessId(0), ProcessId(1)), 1);
        s.run_until(SimTime::from(4_000));
        assert!(total_regens(&s) >= 1, "no regeneration fired");
        assert_eq!(
            s.process(ProcessId(2)).stats().entries,
            1,
            "request never granted after token loss"
        );
    }

    #[test]
    fn stale_tokens_are_dropped_not_double_granted() {
        // θ=8 is *below* one circulation (3 hops × up to 8 ticks each),
        // so regenerations race the still-live token constantly; the
        // epoch order must keep entries consistent regardless.
        let mut s = sim(3, 8, 4);
        for i in 0..3 {
            s.schedule_client(
                SimTime::from(5 + 30 * u64::from(i)),
                ProcessId(i),
                TmeClient::Request { eat_for: 2 },
            );
        }
        s.run_until(SimTime::from(5_000));
        let stale: u64 = s.processes().map(|p| p.stats().stale).sum();
        let regens = total_regens(&s);
        assert!(regens > 0, "θ below circulation time must regenerate");
        assert!(stale > 0, "regeneration races must drop stale tokens");
        assert_eq!(total_entries(&s), 3);
    }

    #[test]
    fn corruption_is_type_valid_and_deterministic() {
        use graybox_rng::rngs::SmallRng;
        use graybox_rng::SeedableRng;
        let mut a = RingProc::new(ProcessId(1), 4, RingConfig::default());
        let mut b = RingProc::new(ProcessId(1), 4, RingConfig::default());
        a.corrupt(&mut SmallRng::seed_from_u64(7));
        b.corrupt(&mut SmallRng::seed_from_u64(7));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.id, ProcessId(1));
        assert_eq!(a.n, 4);
        let mut msg = RingMsg { epoch: 0 };
        msg.corrupt(&mut SmallRng::seed_from_u64(8));
        let mut msg2 = RingMsg { epoch: 0 };
        msg2.corrupt(&mut SmallRng::seed_from_u64(8));
        assert_eq!(msg, msg2);
    }

    #[test]
    fn eating_process_corrupted_to_thinking_loses_token_but_ring_recovers() {
        let mut s = sim(4, 64, 6);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(1),
            TmeClient::Request { eat_for: 400 },
        );
        // Step until process 1 is eating (holds the token).
        while s.peek_time().is_some_and(|t| t <= SimTime::from(1_000))
            && !s.process(ProcessId(1)).mode().is_eating()
        {
            s.step();
        }
        assert!(s.process(ProcessId(1)).mode().is_eating());
        // Transient corruption knocks it out of the CS: the held token
        // evaporates with the mode bit.
        while s.process(ProcessId(1)).mode().is_eating() {
            s.corrupt_process(ProcessId(1));
        }
        let before = total_regens(&s);
        s.schedule_client(
            SimTime::from(s.now().ticks() + 1),
            ProcessId(3),
            TmeClient::Request { eat_for: 2 },
        );
        s.run_until(SimTime::from(8_000));
        assert!(total_regens(&s) > before, "token loss went unrepaired");
        assert_eq!(s.process(ProcessId(3)).stats().entries, 1);
    }

    #[test]
    fn ring_constructor_checks_bounds() {
        let procs = ring(3, RingConfig::default());
        assert_eq!(procs.len(), 3);
        assert_eq!(procs[2].successor(), ProcessId(0));
    }
}
