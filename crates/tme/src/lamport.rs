use graybox_clock::{LamportClock, ProcessId, Timestamp};
use graybox_rng::RngCore;
use graybox_simnet::{Context, Corruptible, Process, TimerTag};

use crate::ra::HEARTBEAT;
use crate::{LspecView, Mode, ProcSnapshot, TmeClient, TmeIntrospect, TmeMsg, RELEASE_TIMER};

/// Lamport's mutual exclusion, the `Lamport_ME` program of the paper's
/// appendix, including both §5.2 modifications that make it an everywhere
/// implementation of `Lspec`:
///
/// 1. `Insert` keeps **at most one request per process** in
///    `request_queue.j`, so a new request from `k` corrects an old,
///    possibly corrupted one.
/// 2. CS entry requires `REQ_j` to be **equal to or less than** the head of
///    the queue (not exactly at the head), so CS Entry Spec holds from any
///    state.
/// 3. (This reproduction's addition.) A *thinking* process that receives a
///    request answers with a `Release` as well as the `Reply`, disavowing
///    any queue entry the requester may hold for it. Without this, a
///    transiently corrupted queue entry for a thinking process is
///    uncorrectable: the wrapper keeps re-sending (the ghost entry is
///    "ahead"), the ghost's owner keeps replying, and nothing ever removes
///    the entry — the system does not stabilize. Fault-free this is a
///    no-op (release removal is idempotent).
///
/// `j.REQ_k` is *virtual* here (as in the paper):
/// `REQ_j lt j.REQ_k ≡ grant.j.k ∧ (REQ_k is not ahead of REQ_j in
/// request_queue.j)`.
///
/// Two guarded-command-semantics notes (the paper writes receive actions
/// with a `¬e.j` guard, under which a disabled receive leaves the message
/// in the channel; an event-driven substrate must deliver eagerly):
///
/// * **Requests and releases are processed in every mode.** Deferring a
///   release while eating and then dropping it would strand the releaser's
///   entry in our queue forever and starve *us* later — processing it
///   eagerly is equivalent to the guarded semantics because the handler
///   never interferes with the eating session.
/// * **Replies are ignored while eating** (the paper's guard), which is
///   harmless: grants are only consumed by the entry decision, and all
///   grants are reset on release anyway.
///
/// # Example
///
/// ```
/// use graybox_clock::ProcessId;
/// use graybox_tme::{LamportMe, Mode};
///
/// let p = LamportMe::new(ProcessId(0), 2);
/// assert_eq!(p.mode(), Mode::Thinking);
/// ```
#[derive(Debug, Clone)]
pub struct LamportMe {
    id: ProcessId,
    n: usize,
    clock: LamportClock,
    mode: Mode,
    req: Timestamp,
    /// `request_queue.j`: at most one entry per process, sorted by `lt`.
    queue: Vec<(ProcessId, Timestamp)>,
    /// `grant.j.k`: whether a reply to the current request arrived from k.
    grant: Vec<bool>,
    eat_for: u64,
    eat_remaining: u64,
    heartbeat: u64,
    entries: u64,
}

impl LamportMe {
    /// Creates process `id` of an `n`-process system in the `Init` state:
    /// thinking, `REQ_j = 0`, empty queue, no grants.
    pub fn new(id: ProcessId, n: usize) -> Self {
        LamportMe {
            id,
            n,
            clock: LamportClock::new(id),
            mode: Mode::Thinking,
            req: Timestamp::zero(id),
            queue: Vec::new(),
            grant: vec![false; n],
            eat_for: 1,
            eat_remaining: 0,
            heartbeat: HEARTBEAT,
            entries: 0,
        }
    }

    /// Number of critical-section entries so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The request queue contents, head first (pid, timestamp).
    pub fn queue(&self) -> &[(ProcessId, Timestamp)] {
        &self.queue
    }

    fn peers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        ProcessId::all(self.n).filter(move |&k| k != self.id)
    }

    /// The paper's modified `Insert`: drop any previous entry of `pid`,
    /// then insert in timestamp order.
    fn insert(&mut self, pid: ProcessId, ts: Timestamp) {
        self.queue.retain(|&(p, _)| p != pid);
        let position = self
            .queue
            .iter()
            .position(|&(_, other)| ts.lt(other))
            .unwrap_or(self.queue.len());
        self.queue.insert(position, (pid, ts));
    }

    fn remove(&mut self, pid: ProcessId) {
        self.queue.retain(|&(p, _)| p != pid);
    }

    fn entry_of(&self, pid: ProcessId) -> Option<Timestamp> {
        self.queue
            .iter()
            .find(|&&(p, _)| p == pid)
            .map(|&(_, ts)| ts)
    }

    fn try_enter(&mut self) -> bool {
        let all_granted = self.peers().all(|k| self.grant[k.index()]);
        let at_head = self
            .queue
            .first()
            .is_none_or(|&(_, head)| !head.lt(self.req)); // REQ_j ≤ head
        if self.mode.is_hungry() && all_granted && at_head {
            self.mode = Mode::Eating;
            self.clock.tick();
            self.eat_remaining = self.eat_for.max(1);
            self.entries += 1;
            true
        } else {
            false
        }
    }

    fn release(&mut self, ctx: &mut Context<TmeMsg>) {
        let ts = self.clock.tick();
        for k in self.peers().collect::<Vec<_>>() {
            ctx.send(k, TmeMsg::Release(ts));
        }
        self.remove(self.id);
        self.grant.fill(false);
        self.req = ts;
        self.mode = Mode::Thinking;
    }

    fn valid_peer(&self, from: ProcessId) -> bool {
        from != self.id && from.index() < self.n
    }

    /// CS Release Spec maintenance: see `RaMe::refresh_req_if_thinking`.
    fn refresh_req_if_thinking(&mut self) {
        if self.mode.is_thinking() {
            self.req = self.clock.now();
        }
    }

    /// Level-1 (intra-process) self-repair, run at the start of every
    /// handler. "For any system M that everywhere implements Lspec, the
    /// internal consistency requirement of each process is satisfied at
    /// every state" (§4) — which presumes the implementation *maintains*
    /// its own structural invariants from arbitrary (corrupted) states:
    ///
    /// * the queue holds at most one entry per valid process, in `lt`
    ///   order (the `Insert` contract);
    /// * while hungry or eating, the own entry equals `REQ_j` — a
    ///   corrupted own entry is invisible to the *virtual* `j.REQ_k`
    ///   relation, so no level-2 wrapper could ever correct it;
    /// * while thinking there is no own entry.
    ///
    /// In legitimate states all of this is a no-op.
    fn repair_internal(&mut self) {
        self.queue.retain(|&(p, _)| p.index() < self.n);
        let mut seen = vec![false; self.n];
        self.queue
            .retain(|&(p, _)| !std::mem::replace(&mut seen[p.index()], true));
        self.queue.sort_by_key(|&(_, a)| a);
        if self.mode.is_thinking() {
            self.remove(self.id);
        } else if self.entry_of(self.id) != Some(self.req) {
            let req = self.req;
            self.insert(self.id, req);
        }
    }
}

impl Process for LamportMe {
    type Msg = TmeMsg;
    type Client = TmeClient;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut Context<TmeMsg>) {
        ctx.set_timer(RELEASE_TIMER, self.heartbeat);
    }

    fn on_message(&mut self, from: ProcessId, msg: TmeMsg, ctx: &mut Context<TmeMsg>) {
        self.repair_internal();
        if !self.valid_peer(from) {
            return;
        }
        self.clock.receive(msg.timestamp());
        match msg {
            TmeMsg::Request(ts) => {
                self.insert(from, ts);
                if self.mode.is_thinking() {
                    self.req = self.clock.now();
                }
                ctx.send(from, TmeMsg::Reply(self.clock.now()));
                if self.mode.is_thinking() {
                    // Third modification (see struct docs): a thinking
                    // process disavows queue membership when asked. This is
                    // a no-op in legitimate runs (its entry, if any, is an
                    // in-flight-release artifact about to be removed) but it
                    // is the only in-vocabulary way to correct a *corrupted*
                    // queue entry for a process that has no pending request
                    // — the paper's two modifications alone leave the
                    // wrapper re-sending forever against such a ghost.
                    ctx.send(from, TmeMsg::Release(self.clock.now()));
                }
                self.try_enter();
            }
            TmeMsg::Reply(ts) => {
                if !self.mode.is_eating() {
                    if self.req.lt(ts) {
                        self.grant[from.index()] = true;
                    }
                    self.try_enter();
                }
            }
            TmeMsg::Release(_) => {
                self.remove(from);
                self.try_enter();
            }
        }
        self.refresh_req_if_thinking();
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<TmeMsg>) {
        if tag != RELEASE_TIMER {
            return;
        }
        self.repair_internal();
        ctx.set_timer(RELEASE_TIMER, self.heartbeat);
        if self.mode.is_eating() {
            self.eat_remaining = self.eat_remaining.saturating_sub(self.heartbeat);
            if self.eat_remaining == 0 {
                self.release(ctx);
            }
        }
        // UNITY weak fairness: re-evaluate the enter-CS guard on every
        // heartbeat, so a corruption that fabricates a fully granted state
        // (which no future message would disturb) cannot wedge the process
        // hungry forever. No-op in legitimate runs.
        self.try_enter();
        self.refresh_req_if_thinking();
    }

    fn on_client(&mut self, event: TmeClient, ctx: &mut Context<TmeMsg>) {
        self.repair_internal();
        match event {
            TmeClient::Request { eat_for } => {
                if !self.mode.is_thinking() {
                    return;
                }
                self.eat_for = eat_for.max(1);
                self.req = self.clock.tick();
                self.grant.fill(false);
                let req = self.req;
                self.insert(self.id, req);
                self.mode = Mode::Hungry;
                for k in self.peers().collect::<Vec<_>>() {
                    ctx.send(k, TmeMsg::Request(req));
                }
                self.try_enter();
            }
            TmeClient::Release => {
                if self.mode.is_eating() {
                    self.release(ctx);
                }
            }
        }
    }
}

impl LspecView for LamportMe {
    fn lspec_id(&self) -> ProcessId {
        self.id
    }

    fn lspec_n(&self) -> usize {
        self.n
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn req(&self) -> Timestamp {
        self.req
    }

    /// The paper's virtual definition: `REQ_j lt j.REQ_k ≡ grant.j.k ∧
    /// (REQ_k is not ahead of REQ_j in request_queue.j)`.
    fn my_req_precedes(&self, k: ProcessId) -> bool {
        if k == self.id || k.index() >= self.n {
            return false;
        }
        let not_ahead = self.entry_of(k).is_none_or(|entry| !entry.lt(self.req));
        self.grant[k.index()] && not_ahead
    }
}

impl TmeIntrospect for LamportMe {
    fn snapshot(&self) -> ProcSnapshot {
        ProcSnapshot {
            pid: self.id,
            mode: self.mode,
            req: self.req,
            now_ts: self.clock.now(),
            precedes: ProcessId::all(self.n)
                .map(|k| self.my_req_precedes(k))
                .collect(),
            local_req: ProcessId::all(self.n)
                .map(|k| if k == self.id { None } else { self.entry_of(k) })
                .collect(),
        }
    }
}

impl Corruptible for LamportMe {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        let n = u32::try_from(self.n).expect("process count exceeds u32");
        let small_ts = |rng: &mut dyn RngCore| {
            Timestamp::new(
                u64::from(rng.next_u32() % 64),
                ProcessId(rng.next_u32() % n),
            )
        };
        self.mode.corrupt(rng);
        self.req = small_ts(rng);
        // Arbitrary queue: random subset of processes with random stamps,
        // in random (possibly mis-sorted) order — the queue invariant is
        // exactly the kind of structure transient faults destroy.
        self.queue.clear();
        for pid in ProcessId::all(self.n) {
            if rng.next_u32().is_multiple_of(2) {
                self.queue.push((pid, small_ts(rng)));
            }
        }
        for flag in &mut self.grant {
            flag.corrupt(rng);
        }
        let mut time = 0u64;
        time.corrupt(rng);
        self.clock.set_time(time % 64);
        self.eat_remaining = u64::from(rng.next_u32() % 16);
        self.eat_for = u64::from(rng.next_u32() % 16).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox_simnet::{SimConfig, SimTime, Simulation};

    fn sim(n: u32, seed: u64) -> Simulation<LamportMe> {
        let procs = (0..n)
            .map(|i| LamportMe::new(ProcessId(i), n as usize))
            .collect();
        Simulation::new(procs, SimConfig::with_seed(seed))
    }

    fn ts(time: u64, pid: u32) -> Timestamp {
        Timestamp::new(time, ProcessId(pid))
    }

    #[test]
    fn insert_keeps_one_entry_per_process_sorted() {
        let mut p = LamportMe::new(ProcessId(0), 3);
        p.insert(ProcessId(1), ts(5, 1));
        p.insert(ProcessId(2), ts(3, 2));
        p.insert(ProcessId(1), ts(1, 1)); // replaces the old entry
        assert_eq!(
            p.queue(),
            &[(ProcessId(1), ts(1, 1)), (ProcessId(2), ts(3, 2))]
        );
    }

    #[test]
    fn single_requester_enters_and_releases() {
        let mut s = sim(3, 1);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 4 },
        );
        s.run_until(SimTime::from(300));
        assert_eq!(s.process(ProcessId(0)).entries(), 1);
        assert_eq!(s.process(ProcessId(0)).mode(), Mode::Thinking);
        // The released request must be gone from everyone's queue.
        for p in s.processes() {
            assert!(p.queue().is_empty(), "stale entry at {}", p.id());
        }
    }

    #[test]
    fn two_contenders_never_overlap() {
        let mut s = sim(2, 2);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 5 },
        );
        s.schedule_client(
            SimTime::from(1),
            ProcessId(1),
            TmeClient::Request { eat_for: 5 },
        );
        while s.peek_time().is_some_and(|t| t <= SimTime::from(1_000)) {
            s.step();
            let eating = s.processes().filter(|p| p.mode().is_eating()).count();
            assert!(eating <= 1, "ME1 violated at {}", s.now());
        }
        assert_eq!(s.process(ProcessId(0)).entries(), 1);
        assert_eq!(s.process(ProcessId(1)).entries(), 1);
    }

    #[test]
    fn five_processes_all_eventually_eat() {
        let mut s = sim(5, 3);
        for i in 0..5 {
            s.schedule_client(
                SimTime::from(1 + u64::from(i) * 2),
                ProcessId(i),
                TmeClient::Request { eat_for: 3 },
            );
        }
        s.run_until(SimTime::from(3_000));
        for p in s.processes() {
            assert_eq!(p.entries(), 1, "process {} starved", p.id());
        }
    }

    #[test]
    fn entries_are_granted_in_timestamp_order() {
        // p0 requests strictly before p1 learns anything: FCFS means p0
        // must enter first.
        let mut s = sim(2, 4);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 30 },
        );
        s.schedule_client(
            SimTime::from(60),
            ProcessId(1),
            TmeClient::Request { eat_for: 5 },
        );
        // After p0's CS (enters ~t<20, eats 30), p1 enters.
        s.run_until(SimTime::from(50));
        assert_eq!(s.process(ProcessId(0)).entries(), 1);
        assert_eq!(s.process(ProcessId(1)).entries(), 0);
        s.run_until(SimTime::from(1_000));
        assert_eq!(s.process(ProcessId(1)).entries(), 1);
    }

    #[test]
    fn release_while_peer_eats_is_processed_eagerly() {
        // Modified semantics note: releases must not be dropped while
        // eating, or stale queue entries starve us later. Simulate the
        // interleaving directly on the handler level.
        let mut p = LamportMe::new(ProcessId(0), 2);
        let mut ctx = graybox_simnet::Context::detached(SimTime::from(1), ProcessId(0));
        p.on_client(TmeClient::Request { eat_for: 100 }, &mut ctx);
        p.on_message(ProcessId(1), TmeMsg::Reply(ts(50, 1)), &mut ctx);
        assert_eq!(p.mode(), Mode::Eating);
        // A stale queue entry from p1 (e.g. re-ordered release) now clears
        // even though we are eating.
        p.insert(ProcessId(1), ts(1, 1));
        p.on_message(ProcessId(1), TmeMsg::Release(ts(60, 1)), &mut ctx);
        assert!(p.entry_of(ProcessId(1)).is_none());
        // The handlers also produced protocol traffic (request + reply ack
        // is not required; at minimum the original request broadcast).
        assert!(!ctx.drain_sends().is_empty());
    }

    #[test]
    fn my_req_precedes_uses_virtual_definition() {
        let mut p = LamportMe::new(ProcessId(0), 2);
        p.req = ts(5, 0);
        p.mode = Mode::Hungry;
        p.insert(ProcessId(0), ts(5, 0));
        // No grant yet: does not precede.
        assert!(!p.my_req_precedes(ProcessId(1)));
        p.grant[1] = true;
        // Granted and k absent from queue: precedes.
        assert!(p.my_req_precedes(ProcessId(1)));
        // k ahead in queue: does not precede.
        p.insert(ProcessId(1), ts(1, 1));
        assert!(!p.my_req_precedes(ProcessId(1)));
        // k behind in queue: precedes.
        p.insert(ProcessId(1), ts(9, 1));
        assert!(p.my_req_precedes(ProcessId(1)));
    }

    #[test]
    fn corruption_scrambles_queue_but_keeps_identity() {
        use graybox_rng::rngs::SmallRng;
        use graybox_rng::SeedableRng;
        let mut p = LamportMe::new(ProcessId(1), 4);
        p.corrupt(&mut SmallRng::seed_from_u64(3));
        assert_eq!(p.id, ProcessId(1));
        for &(pid, _) in p.queue() {
            assert!(pid.index() < 4);
        }
    }

    #[test]
    fn snapshot_exposes_queue_entries_as_local_copies() {
        let mut p = LamportMe::new(ProcessId(0), 3);
        p.insert(ProcessId(2), ts(7, 2));
        let snap = p.snapshot();
        assert_eq!(snap.local_req[2], Some(ts(7, 2)));
        assert_eq!(snap.local_req[1], None);
        assert_eq!(snap.local_req[0], None);
    }
}
