//! # Timestamp-based distributed mutual exclusion (TME)
//!
//! The case study of *"Graybox Stabilization"* (DSN 2001) §3–§5: processes
//! compete for a critical section using totally ordered logical timestamps.
//! This crate provides:
//!
//! * the protocol vocabulary — [`TmeMsg`] (Request / Reply / Release),
//!   [`Mode`] (thinking / hungry / eating), [`TmeClient`] events;
//! * the **`Lspec` interface** — [`LspecView`], exposing exactly the
//!   quantities the paper's local everywhere specification talks about
//!   (`h.j`, `REQ_j`, and the relation `REQ_j lt j.REQ_k`). The graybox
//!   wrapper in `graybox-wrapper` is generic over this trait and can
//!   therefore never touch implementation state — graybox-ness is enforced
//!   by the type system;
//! * three everywhere-implementations of `Lspec`:
//!   [`RaMe`] (Ricart–Agrawala, §5.1), [`LamportMe`] (Lamport's algorithm
//!   with the paper's two §5.2 modifications), and [`RaMeAlt`] (an
//!   independently structured third implementation, used to demonstrate
//!   that the wrapper works on code its author never saw);
//! * [`TmeProcess`], an enum unifying the three so one simulation type
//!   covers all of them, and [`Workload`] for generating client request
//!   schedules.
//!
//! # Example
//!
//! ```
//! use graybox_clock::ProcessId;
//! use graybox_simnet::{SimConfig, Simulation, SimTime};
//! use graybox_tme::{Implementation, Mode, TmeClient, TmeProcess};
//!
//! let n = 3;
//! let procs: Vec<TmeProcess> = (0..n)
//!     .map(|i| TmeProcess::new(Implementation::RicartAgrawala, ProcessId(i), n as usize))
//!     .collect();
//! let mut sim = Simulation::new(procs, SimConfig::with_seed(1));
//! sim.schedule_client(SimTime::from(1), ProcessId(0), TmeClient::Request { eat_for: 5 });
//! sim.run_until(SimTime::from(500));
//! assert_eq!(sim.process(ProcessId(0)).mode(), Mode::Thinking); // requested, ate, released
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alt;
mod client;
mod lamport;
mod mode;
mod msg;
mod process;
mod ra;
pub mod ring;
mod view;
mod workload;

pub use alt::RaMeAlt;
pub use client::{TmeClient, RELEASE_TIMER};
pub use lamport::LamportMe;
pub use mode::Mode;
pub use msg::TmeMsg;
pub use process::{Implementation, TmeProcess};
pub use ra::RaMe;
pub use ring::{ring, RingConfig, RingMsg, RingProc, RingStats, REGEN_TIMER};
pub use view::{LspecView, ProcSnapshot, TmeIntrospect};
pub use workload::{Workload, WorkloadConfig};
