use graybox_clock::{LamportClock, ProcessId, Timestamp};
use graybox_rng::RngCore;
use graybox_simnet::{Context, Corruptible, Process, TimerTag};

use crate::{LspecView, Mode, ProcSnapshot, TmeClient, TmeIntrospect, TmeMsg, RELEASE_TIMER};

/// Ricart–Agrawala mutual exclusion, exactly the `RA_ME` program of §5.1.
///
/// State per process `j`: `REQ_j`, the local copies `j.REQ_k`, the
/// `received(j.REQ_k)` flags, and the mode variable over `{t, h, e}`. The
/// deferred set is *defined*, not stored:
/// `deferred_set.j = {k | received(j.REQ_k) ∧ REQ_j lt j.REQ_k}` (the
/// paper's "always section").
///
/// Actions (one per handler):
/// * **Request CS** — `REQ_j := lc.j; h.j := true; send-request to all`.
/// * **receive-request** `REQ_k` — record it, refresh `REQ_j := lc.j` if
///   thinking, reply iff `j.REQ_k lt REQ_j`.
/// * **receive-reply** — record it (guarded by `¬e.j` as in the paper; the
///   logical clock still witnesses the timestamp so Timestamp Spec holds).
/// * **Grant CS** — enter when `h.j ∧ (∀k≠j : received(j.REQ_k) ∧ REQ_j lt
///   j.REQ_k)`; checked after every state change.
/// * **Release CS** — send the deferred replies, `REQ_j := lc.j`, reset
///   `received`, back to thinking.
///
/// The critical-section *client* (CS Spec: `e.j` is transient) is realized
/// by a heartbeat timer armed at start and re-armed forever: while eating,
/// the remaining eat budget decreases each beat and the process releases
/// when it runs out. Because the heartbeat is re-armed on every firing, the
/// obligation survives arbitrary state corruption — which `Lspec` demands,
/// since Client Spec must be *everywhere* implemented.
///
/// # Example
///
/// ```
/// use graybox_clock::ProcessId;
/// use graybox_tme::{Mode, RaMe};
///
/// let p = RaMe::new(ProcessId(0), 3);
/// assert_eq!(p.mode(), Mode::Thinking);
/// ```
#[derive(Debug, Clone)]
pub struct RaMe {
    id: ProcessId,
    n: usize,
    clock: LamportClock,
    mode: Mode,
    req: Timestamp,
    local_req: Vec<Timestamp>,
    received: Vec<bool>,
    eat_for: u64,
    eat_remaining: u64,
    heartbeat: u64,
    entries: u64,
}

/// Heartbeat period (ticks) used by all bundled implementations.
pub(crate) const HEARTBEAT: u64 = 4;

impl RaMe {
    /// Creates process `id` of an `n`-process system in the paper's `Init`
    /// state: thinking, `REQ_j = 0`, all copies `0`, nothing received.
    pub fn new(id: ProcessId, n: usize) -> Self {
        RaMe {
            id,
            n,
            clock: LamportClock::new(id),
            mode: Mode::Thinking,
            req: Timestamp::zero(id),
            local_req: ProcessId::all(n).map(Timestamp::zero).collect(),
            received: vec![false; n],
            eat_for: 1,
            eat_remaining: 0,
            heartbeat: HEARTBEAT,
            entries: 0,
        }
    }

    /// Number of times this process has entered the critical section.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The current mode (also via [`LspecView`]).
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// `received(j.REQ_k)` — exposed for tests and checkers.
    pub fn received_from(&self, k: ProcessId) -> bool {
        self.received[k.index()]
    }

    fn peers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        ProcessId::all(self.n).filter(move |&k| k != self.id)
    }

    fn deferred_set(&self) -> Vec<ProcessId> {
        self.peers()
            .filter(|&k| self.received[k.index()] && self.req.lt(self.local_req[k.index()]))
            .collect()
    }

    fn try_enter(&mut self) -> bool {
        let granted = self.mode.is_hungry()
            && self
                .peers()
                .all(|k| self.received[k.index()] && self.req.lt(self.local_req[k.index()]));
        if granted {
            self.mode = Mode::Eating;
            self.clock.tick(); // the entry event ts:(e.j)
            self.eat_remaining = self.eat_for.max(1);
            self.entries += 1;
        }
        granted
    }

    fn release(&mut self, ctx: &mut Context<TmeMsg>) {
        let deferred = self.deferred_set();
        let ts = self.clock.tick();
        for k in deferred {
            ctx.send(k, TmeMsg::Reply(ts));
        }
        self.req = ts;
        self.mode = Mode::Thinking;
        self.received.fill(false);
    }

    fn valid_peer(&self, from: ProcessId) -> bool {
        from != self.id && from.index() < self.n
    }

    /// CS Release Spec: "when t.j holds REQ_j is always set to the
    /// timestamp of the most current event in j". Maintained at the end of
    /// every handled event — a no-op in legitimate states, and the repair
    /// path for a corrupted REQ_j at a thinking process (the heartbeat
    /// guarantees it runs within one period of any corruption).
    fn refresh_req_if_thinking(&mut self) {
        if self.mode.is_thinking() {
            self.req = self.clock.now();
        }
    }
}

impl Process for RaMe {
    type Msg = TmeMsg;
    type Client = TmeClient;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut Context<TmeMsg>) {
        ctx.set_timer(RELEASE_TIMER, self.heartbeat);
    }

    fn on_message(&mut self, from: ProcessId, msg: TmeMsg, ctx: &mut Context<TmeMsg>) {
        if !self.valid_peer(from) {
            return; // garbage injected with an impossible origin
        }
        self.clock.receive(msg.timestamp());
        match msg {
            TmeMsg::Request(ts) => {
                self.local_req[from.index()] = ts;
                self.received[from.index()] = true;
                if self.mode.is_thinking() {
                    self.req = self.clock.now();
                }
                if self.local_req[from.index()].lt(self.req) {
                    ctx.send(from, TmeMsg::Reply(self.req));
                }
                self.try_enter();
            }
            TmeMsg::Reply(ts) => {
                if !self.mode.is_eating() {
                    self.local_req[from.index()] = ts;
                    self.received[from.index()] = true;
                    self.try_enter();
                }
            }
            TmeMsg::Release(_) => {
                // RA_ME has no release messages; tolerate injected ones.
            }
        }
        self.refresh_req_if_thinking();
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<TmeMsg>) {
        if tag != RELEASE_TIMER {
            return;
        }
        ctx.set_timer(RELEASE_TIMER, self.heartbeat);
        if self.mode.is_eating() {
            self.eat_remaining = self.eat_remaining.saturating_sub(self.heartbeat);
            if self.eat_remaining == 0 {
                self.release(ctx);
            }
        }
        // UNITY weak fairness: the enter-CS guarded command must fire
        // eventually whenever enabled, not only on message receipt. A
        // corruption can fabricate "all replies received and I precede
        // everyone" — a state no message will ever disturb — so the guard
        // is re-evaluated on every heartbeat. A no-op in legitimate runs
        // (the guard only becomes true at a receipt, which already enters).
        self.try_enter();
        self.refresh_req_if_thinking();
    }

    fn on_client(&mut self, event: TmeClient, ctx: &mut Context<TmeMsg>) {
        match event {
            TmeClient::Request { eat_for } => {
                if !self.mode.is_thinking() {
                    return; // Structural Spec: only t → h
                }
                self.eat_for = eat_for.max(1);
                self.req = self.clock.tick();
                self.mode = Mode::Hungry;
                let req = self.req;
                for k in self.peers().collect::<Vec<_>>() {
                    ctx.send(k, TmeMsg::Request(req));
                }
                self.try_enter(); // n = 1 degenerates to immediate grant
            }
            TmeClient::Release => {
                if self.mode.is_eating() {
                    self.release(ctx);
                }
            }
        }
    }
}

impl LspecView for RaMe {
    fn lspec_id(&self) -> ProcessId {
        self.id
    }

    fn lspec_n(&self) -> usize {
        self.n
    }

    fn mode(&self) -> Mode {
        self.mode
    }

    fn req(&self) -> Timestamp {
        self.req
    }

    fn my_req_precedes(&self, k: ProcessId) -> bool {
        k != self.id
            && k.index() < self.n
            && self.received[k.index()]
            && self.req.lt(self.local_req[k.index()])
    }
}

impl TmeIntrospect for RaMe {
    fn snapshot(&self) -> ProcSnapshot {
        ProcSnapshot {
            pid: self.id,
            mode: self.mode,
            req: self.req,
            now_ts: self.clock.now(),
            precedes: ProcessId::all(self.n)
                .map(|k| self.my_req_precedes(k))
                .collect(),
            local_req: ProcessId::all(self.n)
                .map(|k| (k != self.id).then(|| self.local_req[k.index()]))
                .collect(),
        }
    }
}

impl Corruptible for RaMe {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        let n = u32::try_from(self.n).expect("process count exceeds u32");
        let small_ts = |rng: &mut dyn RngCore| {
            Timestamp::new(
                u64::from(rng.next_u32() % 64),
                ProcessId(rng.next_u32() % n),
            )
        };
        self.mode.corrupt(rng);
        self.req = small_ts(rng);
        for slot in &mut self.local_req {
            *slot = small_ts(rng);
        }
        for flag in &mut self.received {
            flag.corrupt(rng);
        }
        let mut time = 0u64;
        time.corrupt(rng);
        self.clock.set_time(time % 64);
        self.eat_remaining = u64::from(rng.next_u32() % 16);
        self.eat_for = u64::from(rng.next_u32() % 16).max(1);
        // id, n, heartbeat, entries are substrate/accounting, not protocol
        // state: identity is preserved by the fault model, and `entries` is
        // an experiment counter outside the modelled state space.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox_simnet::{SimConfig, SimTime, Simulation};

    fn sim(n: u32, seed: u64) -> Simulation<RaMe> {
        let procs = (0..n)
            .map(|i| RaMe::new(ProcessId(i), n as usize))
            .collect();
        Simulation::new(procs, SimConfig::with_seed(seed))
    }

    #[test]
    fn initial_state_matches_paper_init() {
        let p = RaMe::new(ProcessId(1), 3);
        assert_eq!(p.mode(), Mode::Thinking);
        assert_eq!(p.req(), Timestamp::zero(ProcessId(1)));
        assert!(!p.received_from(ProcessId(0)));
        assert!(!p.my_req_precedes(ProcessId(0)));
    }

    #[test]
    fn single_requester_enters_and_releases() {
        let mut s = sim(3, 1);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 6 },
        );
        let records = s.run_until(SimTime::from(300));
        let p0 = s.process(ProcessId(0));
        assert_eq!(p0.entries(), 1);
        assert_eq!(p0.mode(), Mode::Thinking);
        assert!(!records.is_empty());
    }

    #[test]
    fn two_contenders_alternate_without_overlap() {
        let mut s = sim(2, 2);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 5 },
        );
        s.schedule_client(
            SimTime::from(1),
            ProcessId(1),
            TmeClient::Request { eat_for: 5 },
        );
        // Step manually and assert mutual exclusion at every step.
        while s.peek_time().is_some_and(|t| t <= SimTime::from(1_000)) {
            s.step();
            let eating = s.processes().filter(|p| p.mode().is_eating()).count();
            assert!(eating <= 1, "ME1 violated at {}", s.now());
        }
        assert_eq!(s.process(ProcessId(0)).entries(), 1);
        assert_eq!(s.process(ProcessId(1)).entries(), 1);
    }

    #[test]
    fn five_processes_all_eventually_eat() {
        let mut s = sim(5, 3);
        for i in 0..5 {
            s.schedule_client(
                SimTime::from(1 + u64::from(i)),
                ProcessId(i),
                TmeClient::Request { eat_for: 3 },
            );
        }
        s.run_until(SimTime::from(3_000));
        for p in s.processes() {
            assert_eq!(p.entries(), 1, "process {} starved", p.id());
            assert_eq!(LspecView::mode(p), Mode::Thinking);
        }
    }

    #[test]
    fn requests_while_hungry_are_ignored() {
        let mut s = sim(2, 4);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 50 },
        );
        s.schedule_client(
            SimTime::from(2),
            ProcessId(0),
            TmeClient::Request { eat_for: 50 },
        );
        s.run_until(SimTime::from(400));
        assert_eq!(s.process(ProcessId(0)).entries(), 1);
    }

    #[test]
    fn explicit_client_release_ends_eating() {
        let mut s = sim(2, 5);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 500 },
        );
        s.schedule_client(SimTime::from(40), ProcessId(0), TmeClient::Release);
        s.run_until(SimTime::from(120));
        assert_eq!(s.process(ProcessId(0)).mode(), Mode::Thinking);
    }

    #[test]
    fn lost_reply_deadlocks_without_wrapper() {
        // The §4 motivation: drop both requests in flight; each side ends
        // up hungry with stale information and no further messages flow.
        let mut s = sim(2, 6);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 2 },
        );
        s.schedule_client(
            SimTime::from(1),
            ProcessId(1),
            TmeClient::Request { eat_for: 2 },
        );
        // Run just past the client events so the requests are in flight.
        while s.peek_time().is_some_and(|t| t <= SimTime::from(1)) {
            s.step();
        }
        assert_eq!(s.flush_channel(ProcessId(0), ProcessId(1)), 1);
        assert_eq!(s.flush_channel(ProcessId(1), ProcessId(0)), 1);
        s.run_until(SimTime::from(2_000));
        assert_eq!(s.process(ProcessId(0)).mode(), Mode::Hungry);
        assert_eq!(s.process(ProcessId(1)).mode(), Mode::Hungry);
        assert_eq!(s.process(ProcessId(0)).entries(), 0);
    }

    #[test]
    fn corruption_is_type_valid_and_deterministic() {
        use graybox_rng::rngs::SmallRng;
        use graybox_rng::SeedableRng;
        let mut a = RaMe::new(ProcessId(0), 3);
        let mut b = RaMe::new(ProcessId(0), 3);
        a.corrupt(&mut SmallRng::seed_from_u64(9));
        b.corrupt(&mut SmallRng::seed_from_u64(9));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.id, ProcessId(0)); // identity preserved
        assert!(a.req.pid.index() < 3);
    }

    #[test]
    fn eating_is_transient_even_after_corruption_into_eating() {
        use graybox_rng::rngs::SmallRng;
        use graybox_rng::SeedableRng;
        let mut s = sim(2, 7);
        // Let the start events arm the heartbeats.
        s.run_until(SimTime::from(5));
        // Force process 0 into Eating with a bounded eat_remaining.
        let mut rng = SmallRng::seed_from_u64(1);
        loop {
            s.process_mut(ProcessId(0)).corrupt(&mut rng);
            if s.process(ProcessId(0)).mode().is_eating() {
                break;
            }
        }
        s.run_until(SimTime::from(200));
        assert!(!s.process(ProcessId(0)).mode().is_eating());
    }

    #[test]
    fn snapshot_reflects_state() {
        let p = RaMe::new(ProcessId(1), 3);
        let snap = p.snapshot();
        assert_eq!(snap.pid, ProcessId(1));
        assert_eq!(snap.mode, Mode::Thinking);
        assert_eq!(snap.local_req.len(), 3);
        assert!(snap.local_req[1].is_none());
        assert!(snap.local_req[0].is_some());
        assert!(!snap.precedes_all());
    }
}
