use graybox_simnet::TimerTag;

/// Timer tag used by implementations to schedule the end of a critical
/// section (`eat_for` ticks after entry). Wrappers use tags at or above
/// `1 << 16` (see [`graybox_simnet::process::TimerTagExt`] semantics), so
/// this never collides.
///
/// [`graybox_simnet::process::TimerTagExt`]: graybox_simnet::TimerTag
pub const RELEASE_TIMER: TimerTag = 1;

/// Client events driving a TME process (the paper's Client Spec actions).
///
/// The client state machine (thinking → hungry → eating → thinking) lives
/// inside the process per the paper's model; these events are the client's
/// stimuli. CS Spec ("`e.j` is transient") is realized by `eat_for`:
/// implementations schedule their own release after that many ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmeClient {
    /// Request the critical section, intending to hold it for `eat_for`
    /// ticks once granted. Ignored unless the process is thinking
    /// (Structural Spec).
    Request {
        /// How long to eat once the CS is granted.
        eat_for: u64,
    },
    /// Release the critical section immediately. Ignored unless eating.
    Release,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_timer_is_below_wrapper_namespace() {
        let tag = RELEASE_TIMER;
        assert!(tag < (1 << 16));
    }

    #[test]
    fn client_events_are_value_types() {
        let request = TmeClient::Request { eat_for: 10 };
        assert_eq!(request, request);
        assert_ne!(request, TmeClient::Release);
    }
}
