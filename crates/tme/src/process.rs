use std::fmt;

use graybox_clock::{ProcessId, Timestamp};
use graybox_rng::RngCore;
use graybox_simnet::{Context, Corruptible, Process, TimerTag};

use crate::{
    LamportMe, LspecView, Mode, ProcSnapshot, RaMe, RaMeAlt, TmeClient, TmeIntrospect, TmeMsg,
};

/// Which `Lspec` implementation to instantiate — the paper's two published
/// programs plus this repo's independent third one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Implementation {
    /// Ricart–Agrawala (`RA_ME`, §5.1).
    RicartAgrawala,
    /// Lamport's algorithm with the §5.2 modifications (`Lamport_ME`).
    Lamport,
    /// The independently structured third implementation ([`RaMeAlt`]).
    AltRicartAgrawala,
}

impl Implementation {
    /// All bundled implementations, for sweeping experiments.
    pub const ALL: [Implementation; 3] = [
        Implementation::RicartAgrawala,
        Implementation::Lamport,
        Implementation::AltRicartAgrawala,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Implementation::RicartAgrawala => "RA_ME",
            Implementation::Lamport => "Lamport_ME",
            Implementation::AltRicartAgrawala => "Alt_ME",
        }
    }

    /// The implementation with that [`label`](Implementation::label)
    /// (inverse of it), for deserializing repro files.
    pub fn from_label(label: &str) -> Option<Implementation> {
        Implementation::ALL
            .into_iter()
            .find(|imp| imp.label() == label)
    }
}

impl fmt::Display for Implementation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A TME process of any bundled implementation, so one simulation type
/// covers all of them (and the wrapper can be compared across
/// implementations with *identical* wrapper code — Corollary 11).
#[derive(Debug, Clone)]
pub enum TmeProcess {
    /// Ricart–Agrawala.
    Ra(RaMe),
    /// Lamport (modified).
    Lamport(LamportMe),
    /// The independent third implementation.
    Alt(RaMeAlt),
}

impl TmeProcess {
    /// Instantiates process `id` of an `n`-process system running the given
    /// implementation, in its `Init` state.
    pub fn new(implementation: Implementation, id: ProcessId, n: usize) -> Self {
        match implementation {
            Implementation::RicartAgrawala => TmeProcess::Ra(RaMe::new(id, n)),
            Implementation::Lamport => TmeProcess::Lamport(LamportMe::new(id, n)),
            Implementation::AltRicartAgrawala => TmeProcess::Alt(RaMeAlt::new(id, n)),
        }
    }

    /// Which implementation this process runs.
    pub fn implementation(&self) -> Implementation {
        match self {
            TmeProcess::Ra(_) => Implementation::RicartAgrawala,
            TmeProcess::Lamport(_) => Implementation::Lamport,
            TmeProcess::Alt(_) => Implementation::AltRicartAgrawala,
        }
    }

    /// Number of critical-section entries so far.
    pub fn entries(&self) -> u64 {
        match self {
            TmeProcess::Ra(p) => p.entries(),
            TmeProcess::Lamport(p) => p.entries(),
            TmeProcess::Alt(p) => p.entries(),
        }
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        match self {
            TmeProcess::Ra(p) => p.mode(),
            TmeProcess::Lamport(p) => p.mode(),
            TmeProcess::Alt(p) => p.mode(),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            TmeProcess::Ra($p) => $body,
            TmeProcess::Lamport($p) => $body,
            TmeProcess::Alt($p) => $body,
        }
    };
}

impl Process for TmeProcess {
    type Msg = TmeMsg;
    type Client = TmeClient;

    fn id(&self) -> ProcessId {
        delegate!(self, p => p.id())
    }

    fn on_start(&mut self, ctx: &mut Context<TmeMsg>) {
        delegate!(self, p => p.on_start(ctx))
    }

    fn on_message(&mut self, from: ProcessId, msg: TmeMsg, ctx: &mut Context<TmeMsg>) {
        delegate!(self, p => p.on_message(from, msg, ctx))
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<TmeMsg>) {
        delegate!(self, p => p.on_timer(tag, ctx))
    }

    fn on_client(&mut self, event: TmeClient, ctx: &mut Context<TmeMsg>) {
        delegate!(self, p => p.on_client(event, ctx))
    }
}

impl LspecView for TmeProcess {
    fn lspec_id(&self) -> ProcessId {
        delegate!(self, p => p.lspec_id())
    }

    fn lspec_n(&self) -> usize {
        delegate!(self, p => p.lspec_n())
    }

    fn mode(&self) -> Mode {
        delegate!(self, p => LspecView::mode(p))
    }

    fn req(&self) -> Timestamp {
        delegate!(self, p => p.req())
    }

    fn my_req_precedes(&self, k: ProcessId) -> bool {
        delegate!(self, p => p.my_req_precedes(k))
    }
}

impl TmeIntrospect for TmeProcess {
    fn snapshot(&self) -> ProcSnapshot {
        delegate!(self, p => p.snapshot())
    }
}

impl Corruptible for TmeProcess {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        delegate!(self, p => p.corrupt(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox_simnet::{SimConfig, SimTime, Simulation};

    #[test]
    fn factory_builds_each_implementation() {
        for implementation in Implementation::ALL {
            let p = TmeProcess::new(implementation, ProcessId(0), 2);
            assert_eq!(p.implementation(), implementation);
            assert_eq!(p.mode(), Mode::Thinking);
            assert_eq!(p.entries(), 0);
            assert_eq!(Process::id(&p), ProcessId(0));
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            Implementation::ALL.iter().map(|i| i.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(Implementation::Lamport.to_string(), "Lamport_ME");
    }

    #[test]
    fn every_implementation_completes_a_contended_round() {
        for implementation in Implementation::ALL {
            let n = 3;
            let procs = (0..n)
                .map(|i| TmeProcess::new(implementation, ProcessId(i), n as usize))
                .collect();
            let mut sim = Simulation::new(procs, SimConfig::with_seed(11));
            for i in 0..n {
                sim.schedule_client(
                    SimTime::from(1),
                    ProcessId(i),
                    TmeClient::Request { eat_for: 3 },
                );
            }
            sim.run_until(SimTime::from(2_000));
            for p in sim.processes() {
                assert_eq!(
                    p.entries(),
                    1,
                    "{implementation}: {} starved",
                    Process::id(p)
                );
            }
        }
    }

    #[test]
    fn snapshots_work_through_the_enum() {
        let p = TmeProcess::new(Implementation::Lamport, ProcessId(1), 3);
        let snap = p.snapshot();
        assert_eq!(snap.pid, ProcessId(1));
        assert_eq!(snap.precedes.len(), 3);
    }
}
