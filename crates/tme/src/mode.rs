use std::fmt;

use graybox_rng::RngCore;
use graybox_simnet::Corruptible;

/// The client-visible mode of a process (the paper's `t.j`, `h.j`, `e.j`).
///
/// Structural Spec: in every state exactly one of the three holds — which
/// the enum representation makes true by construction (a useful property:
/// even *arbitrary corruption* cannot make a process simultaneously hungry
/// and eating, matching the paper's use of a `state.j` variable over the
/// domain `{h, e, t}` to "everywhere implement" Structural Spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Neither hungry nor eating (`t.j`).
    #[default]
    Thinking,
    /// Requested the critical section, not yet granted (`h.j`).
    Hungry,
    /// Inside the critical section (`e.j`).
    Eating,
}

impl Mode {
    /// `t.j`.
    pub fn is_thinking(self) -> bool {
        self == Mode::Thinking
    }

    /// `h.j`.
    pub fn is_hungry(self) -> bool {
        self == Mode::Hungry
    }

    /// `e.j`.
    pub fn is_eating(self) -> bool {
        self == Mode::Eating
    }

    /// Whether `self → next` is a legal move of the Flow Spec
    /// (`t unless h`, `h unless e`, `e unless t` — i.e. stay, or advance
    /// one step around the cycle t → h → e → t).
    pub fn flow_allows(self, next: Mode) -> bool {
        self == next
            || matches!(
                (self, next),
                (Mode::Thinking, Mode::Hungry)
                    | (Mode::Hungry, Mode::Eating)
                    | (Mode::Eating, Mode::Thinking)
            )
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Mode::Thinking => "thinking",
            Mode::Hungry => "hungry",
            Mode::Eating => "eating",
        };
        f.write_str(text)
    }
}

impl Corruptible for Mode {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        *self = match rng.next_u32() % 3 {
            0 => Mode::Thinking,
            1 => Mode::Hungry,
            _ => Mode::Eating,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox_rng::rngs::SmallRng;
    use graybox_rng::SeedableRng;

    #[test]
    fn predicates_are_exclusive() {
        for mode in [Mode::Thinking, Mode::Hungry, Mode::Eating] {
            let truths = [mode.is_thinking(), mode.is_hungry(), mode.is_eating()];
            assert_eq!(truths.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn flow_allows_cycle_and_stutter() {
        assert!(Mode::Thinking.flow_allows(Mode::Hungry));
        assert!(Mode::Hungry.flow_allows(Mode::Eating));
        assert!(Mode::Eating.flow_allows(Mode::Thinking));
        for mode in [Mode::Thinking, Mode::Hungry, Mode::Eating] {
            assert!(mode.flow_allows(mode));
        }
    }

    #[test]
    fn flow_forbids_shortcuts() {
        assert!(!Mode::Thinking.flow_allows(Mode::Eating));
        assert!(!Mode::Hungry.flow_allows(Mode::Thinking));
        assert!(!Mode::Eating.flow_allows(Mode::Hungry));
    }

    #[test]
    fn corruption_hits_every_mode() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..64 {
            let mut mode = Mode::Thinking;
            mode.corrupt(&mut rng);
            seen[mode as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn default_is_thinking_per_init() {
        assert_eq!(Mode::default(), Mode::Thinking);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Mode::Hungry.to_string(), "hungry");
    }
}
