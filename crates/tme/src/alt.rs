use graybox_clock::{LamportClock, ProcessId, Timestamp};
use graybox_rng::RngCore;
use graybox_simnet::{Context, Corruptible, Process, TimerTag};

use crate::ra::HEARTBEAT;
use crate::{LspecView, Mode, ProcSnapshot, TmeClient, TmeIntrospect, TmeMsg, RELEASE_TIMER};

/// The phase of an [`RaMeAlt`] process — a deliberately different internal
/// representation from [`RaMe`](crate::RaMe)'s flag-based state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Thinking.
    Idle,
    /// Hungry, waiting for permissions.
    Waiting,
    /// Eating.
    InCs,
}

/// An *independent third implementation* of `Lspec`, in the
/// Ricart–Agrawala family but structured differently from [`RaMe`]:
///
/// * per-peer information is `Option<Timestamp>` (`None` = no current
///   info) instead of a `(received, value)` pair;
/// * the deferred set is materialized and carried in the `InCs` phase
///   instead of recomputed from the always-section definition;
/// * the grant bookkeeping is recomputed from `Option` info rather than
///   flag arrays.
///
/// Its purpose in this reproduction is Corollary 11 taken seriously: the
/// graybox wrapper was written against [`LspecView`] only, so it must add
/// stabilization to this implementation too — code the wrapper author
/// never saw. The integration tests and experiment T5 drive that point.
///
/// [`RaMe`]: crate::RaMe
///
/// # Example
///
/// ```
/// use graybox_clock::ProcessId;
/// use graybox_tme::{Mode, RaMeAlt};
///
/// let p = RaMeAlt::new(ProcessId(0), 3);
/// assert_eq!(p.mode(), Mode::Thinking);
/// ```
#[derive(Debug, Clone)]
pub struct RaMeAlt {
    id: ProcessId,
    n: usize,
    clock: LamportClock,
    phase: Phase,
    req: Timestamp,
    info: Vec<Option<Timestamp>>,
    /// Peers whose requests we have not answered yet (they get their reply
    /// at release) — materialized, unlike `RA_ME`'s always-section set.
    deferred: Vec<ProcessId>,
    eat_for: u64,
    eat_remaining: u64,
    heartbeat: u64,
    entries: u64,
}

impl RaMeAlt {
    /// Creates process `id` of an `n`-process system, thinking with
    /// `REQ_j = 0` and no peer information.
    pub fn new(id: ProcessId, n: usize) -> Self {
        RaMeAlt {
            id,
            n,
            clock: LamportClock::new(id),
            phase: Phase::Idle,
            req: Timestamp::zero(id),
            info: vec![None; n],
            deferred: Vec::new(),
            eat_for: 1,
            eat_remaining: 0,
            heartbeat: HEARTBEAT,
            entries: 0,
        }
    }

    /// Number of critical-section entries so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        match self.phase {
            Phase::Idle => Mode::Thinking,
            Phase::Waiting => Mode::Hungry,
            Phase::InCs => Mode::Eating,
        }
    }

    fn peers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        ProcessId::all(self.n).filter(move |&k| k != self.id)
    }

    fn try_enter(&mut self) {
        if self.phase != Phase::Waiting {
            return;
        }
        let all_later = self
            .peers()
            .all(|k| matches!(self.info[k.index()], Some(ts) if self.req.lt(ts)));
        if all_later {
            self.phase = Phase::InCs;
            self.clock.tick();
            self.eat_remaining = self.eat_for.max(1);
            self.entries += 1;
        }
    }

    fn release(&mut self, ctx: &mut Context<TmeMsg>) {
        let deferred = std::mem::take(&mut self.deferred);
        let ts = self.clock.tick();
        for k in deferred {
            if k != self.id && k.index() < self.n {
                ctx.send(k, TmeMsg::Reply(ts));
            }
        }
        self.req = ts;
        self.phase = Phase::Idle;
        self.info.fill(None);
    }

    fn valid_peer(&self, from: ProcessId) -> bool {
        from != self.id && from.index() < self.n
    }

    /// CS Release Spec maintenance: see `RaMe::refresh_req_if_thinking`.
    fn refresh_req_if_thinking(&mut self) {
        if self.phase == Phase::Idle {
            self.req = self.clock.now();
        }
    }
}

impl Process for RaMeAlt {
    type Msg = TmeMsg;
    type Client = TmeClient;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut Context<TmeMsg>) {
        ctx.set_timer(RELEASE_TIMER, self.heartbeat);
    }

    fn on_message(&mut self, from: ProcessId, msg: TmeMsg, ctx: &mut Context<TmeMsg>) {
        if !self.valid_peer(from) {
            return;
        }
        self.clock.receive(msg.timestamp());
        match msg {
            TmeMsg::Request(ts) => {
                self.info[from.index()] = Some(ts);
                if self.phase == Phase::Idle {
                    self.req = self.clock.now();
                }
                if ts.lt(self.req) {
                    // Reply with REQ_j (not the raw clock): a reply must
                    // never claim a request from the future, or invariant I
                    // (Theorem A.1) breaks at the receiver.
                    ctx.send(from, TmeMsg::Reply(self.req));
                    self.deferred.retain(|&k| k != from);
                } else if !self.deferred.contains(&from) {
                    // Our request precedes: answer at release, whether we
                    // are still waiting or already eating.
                    self.deferred.push(from);
                }
                self.try_enter();
            }
            TmeMsg::Reply(ts) => {
                if !self.mode().is_eating() {
                    self.info[from.index()] = Some(ts);
                    self.try_enter();
                }
            }
            TmeMsg::Release(_) => {
                // Not part of this protocol; tolerate injected garbage.
            }
        }
        self.refresh_req_if_thinking();
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<TmeMsg>) {
        if tag != RELEASE_TIMER {
            return;
        }
        ctx.set_timer(RELEASE_TIMER, self.heartbeat);
        if self.mode().is_eating() {
            self.eat_remaining = self.eat_remaining.saturating_sub(self.heartbeat);
            if self.eat_remaining == 0 {
                self.release(ctx);
            }
        }
        // UNITY weak fairness: re-evaluate the enter-CS guard on every
        // heartbeat, so a corruption that fabricates an all-later info map
        // (which no future message would disturb) cannot wedge the process
        // in Waiting forever. No-op in legitimate runs.
        self.try_enter();
        self.refresh_req_if_thinking();
    }

    fn on_client(&mut self, event: TmeClient, ctx: &mut Context<TmeMsg>) {
        match event {
            TmeClient::Request { eat_for } => {
                if self.phase != Phase::Idle {
                    return;
                }
                self.eat_for = eat_for.max(1);
                self.req = self.clock.tick();
                self.phase = Phase::Waiting;
                // Requesting invalidates stale permissions: the protocol
                // demands info about peers' requests *after* ours.
                self.info.fill(None);
                self.deferred.clear();
                let req = self.req;
                for k in self.peers().collect::<Vec<_>>() {
                    ctx.send(k, TmeMsg::Request(req));
                }
                self.try_enter();
            }
            TmeClient::Release => {
                if self.mode().is_eating() {
                    self.release(ctx);
                }
            }
        }
    }
}

impl LspecView for RaMeAlt {
    fn lspec_id(&self) -> ProcessId {
        self.id
    }

    fn lspec_n(&self) -> usize {
        self.n
    }

    fn mode(&self) -> Mode {
        self.mode()
    }

    fn req(&self) -> Timestamp {
        self.req
    }

    fn my_req_precedes(&self, k: ProcessId) -> bool {
        k != self.id
            && k.index() < self.n
            && matches!(self.info[k.index()], Some(ts) if self.req.lt(ts))
    }
}

impl TmeIntrospect for RaMeAlt {
    fn snapshot(&self) -> ProcSnapshot {
        ProcSnapshot {
            pid: self.id,
            mode: self.mode(),
            req: self.req,
            now_ts: self.clock.now(),
            precedes: ProcessId::all(self.n)
                .map(|k| self.my_req_precedes(k))
                .collect(),
            local_req: ProcessId::all(self.n)
                .map(|k| {
                    if k == self.id {
                        None
                    } else {
                        self.info[k.index()]
                    }
                })
                .collect(),
        }
    }
}

impl Corruptible for RaMeAlt {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        let n = u32::try_from(self.n).expect("process count exceeds u32");
        let small_ts = |rng: &mut dyn RngCore| {
            Timestamp::new(
                u64::from(rng.next_u32() % 64),
                ProcessId(rng.next_u32() % n),
            )
        };
        self.req = small_ts(rng);
        for slot in &mut self.info {
            *slot = rng.next_u32().is_multiple_of(2).then(|| small_ts(rng));
        }
        self.phase = match rng.next_u32() % 3 {
            0 => Phase::Idle,
            1 => Phase::Waiting,
            _ => Phase::InCs,
        };
        self.deferred = ProcessId::all(self.n)
            .filter(|_| rng.next_u32().is_multiple_of(2))
            .collect();
        let mut time = 0u64;
        time.corrupt(rng);
        self.clock.set_time(time % 64);
        self.eat_remaining = u64::from(rng.next_u32() % 16);
        self.eat_for = u64::from(rng.next_u32() % 16).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox_simnet::{SimConfig, SimTime, Simulation};

    fn sim(n: u32, seed: u64) -> Simulation<RaMeAlt> {
        let procs = (0..n)
            .map(|i| RaMeAlt::new(ProcessId(i), n as usize))
            .collect();
        Simulation::new(procs, SimConfig::with_seed(seed))
    }

    #[test]
    fn single_requester_enters_and_releases() {
        let mut s = sim(3, 1);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 4 },
        );
        s.run_until(SimTime::from(300));
        assert_eq!(s.process(ProcessId(0)).entries(), 1);
        assert_eq!(s.process(ProcessId(0)).mode(), Mode::Thinking);
    }

    #[test]
    fn contenders_never_overlap() {
        let mut s = sim(3, 2);
        for i in 0..3 {
            s.schedule_client(
                SimTime::from(1),
                ProcessId(i),
                TmeClient::Request { eat_for: 4 },
            );
        }
        while s.peek_time().is_some_and(|t| t <= SimTime::from(2_000)) {
            s.step();
            let eating = s.processes().filter(|p| p.mode().is_eating()).count();
            assert!(eating <= 1, "ME1 violated at {}", s.now());
        }
        for p in s.processes() {
            assert_eq!(p.entries(), 1, "process {} starved", p.id());
        }
    }

    #[test]
    fn deferred_replies_flow_at_release() {
        let mut s = sim(2, 3);
        s.schedule_client(
            SimTime::from(1),
            ProcessId(0),
            TmeClient::Request { eat_for: 40 },
        );
        s.schedule_client(
            SimTime::from(20),
            ProcessId(1),
            TmeClient::Request { eat_for: 4 },
        );
        s.run_until(SimTime::from(30));
        // p0 eats, p1 waits (its request deferred).
        assert_eq!(s.process(ProcessId(0)).mode(), Mode::Eating);
        assert_eq!(s.process(ProcessId(1)).mode(), Mode::Hungry);
        s.run_until(SimTime::from(1_000));
        assert_eq!(s.process(ProcessId(1)).entries(), 1);
    }

    #[test]
    fn fresh_request_clears_stale_permissions() {
        let mut p = RaMeAlt::new(ProcessId(0), 2);
        let mut ctx = graybox_simnet::Context::detached(SimTime::from(1), ProcessId(0));
        // Receive a request while idle: info recorded.
        p.on_message(
            ProcessId(1),
            TmeMsg::Request(Timestamp::new(1, ProcessId(1))),
            &mut ctx,
        );
        assert!(p.info[1].is_some());
        // Our own request resets it: stale info must not grant entry.
        p.on_client(TmeClient::Request { eat_for: 5 }, &mut ctx);
        assert!(p.info[1].is_none());
        assert_eq!(p.mode(), Mode::Hungry);
    }

    #[test]
    fn corruption_preserves_identity_and_bounds() {
        use graybox_rng::rngs::SmallRng;
        use graybox_rng::SeedableRng;
        let mut p = RaMeAlt::new(ProcessId(1), 3);
        p.corrupt(&mut SmallRng::seed_from_u64(4));
        assert_eq!(p.id, ProcessId(1));
        for ts in p.info.iter().flatten() {
            assert!(ts.pid.index() < 3);
        }
    }

    #[test]
    fn snapshot_mirrors_info() {
        let mut p = RaMeAlt::new(ProcessId(0), 2);
        p.info[1] = Some(Timestamp::new(9, ProcessId(1)));
        let snap = p.snapshot();
        assert_eq!(snap.local_req[1], Some(Timestamp::new(9, ProcessId(1))));
        assert_eq!(snap.local_req[0], None);
    }
}
