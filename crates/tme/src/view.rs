use graybox_clock::{ProcessId, Timestamp};

use crate::Mode;

/// The `Lspec`-level view of a TME process — **everything a graybox
/// wrapper is allowed to see**.
///
/// The paper's refined wrapper is
///
/// ```text
/// W_j :: h.j → (∀k : k ≠ j ∧ j.REQ_k lt REQ_j : send(REQ_j, j, k))
/// ```
///
/// so a wrapper needs exactly: whether the process is hungry (`h.j`), its
/// current request timestamp (`REQ_j`), and the relation between `REQ_j`
/// and its local copy `j.REQ_k` of each peer's request. This trait exposes
/// those three quantities and *nothing else*; `graybox-wrapper` is generic
/// over it, so the type system guarantees the wrapper never depends on
/// implementation internals (the paper's graybox property).
///
/// Because `lt` totally orders timestamps of distinct processes,
/// `j.REQ_k lt REQ_j ≡ ¬(REQ_j lt j.REQ_k)`; implementations expose the
/// positive direction [`my_req_precedes`](LspecView::my_req_precedes)
/// ("my local information *confirms* my request precedes k's"), and
/// wrappers act on its negation. An implementation that has not (yet)
/// received peer `k`'s request information must return `false` — its local
/// copy does not confirm precedence, which is exactly when the wrapper
/// must re-send (this covers the lost-reply deadlock of §4).
pub trait LspecView {
    /// This process's identity (`j`).
    fn lspec_id(&self) -> ProcessId;

    /// Total number of processes in the system.
    fn lspec_n(&self) -> usize;

    /// The current mode (`t.j` / `h.j` / `e.j`).
    fn mode(&self) -> Mode;

    /// The current request timestamp `REQ_j` (equals the most recent event
    /// timestamp while thinking, per CS Release Spec).
    fn req(&self) -> Timestamp;

    /// The paper's `REQ_j lt j.REQ_k`: does this process's *local
    /// information* confirm that its own current request precedes `k`'s?
    fn my_req_precedes(&self, k: ProcessId) -> bool;

    /// Identities of all peers (`k ≠ j`).
    fn peers(&self) -> Vec<ProcessId> {
        ProcessId::all(self.lspec_n())
            .filter(|&k| k != self.lspec_id())
            .collect()
    }
}

/// A point-in-time snapshot of a process's `Lspec`-relevant state, taken by
/// the trace recorder after every simulation step and consumed by the
/// checkers in `graybox-spec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSnapshot {
    /// Identity of the process.
    pub pid: ProcessId,
    /// Mode at snapshot time.
    pub mode: Mode,
    /// `REQ_j`.
    pub req: Timestamp,
    /// The process's current logical-clock reading (`ts.j`).
    pub now_ts: Timestamp,
    /// For each process index `k`: the value of `REQ_j lt j.REQ_k`
    /// (this process's slot holds `false`).
    pub precedes: Vec<bool>,
    /// For each process index `k`: the concrete local copy `j.REQ_k`,
    /// where the implementation stores one (`None` for implementations
    /// like Lamport's whose `j.REQ_k` is virtual, and for the own slot).
    pub local_req: Vec<Option<Timestamp>>,
}

impl ProcSnapshot {
    /// True when this process's local information says every peer's
    /// request is later — the CS Entry Spec antecedent.
    pub fn precedes_all(&self) -> bool {
        self.precedes
            .iter()
            .enumerate()
            .all(|(k, &p)| k == self.pid.index() || p)
    }
}

/// Introspection interface used by the trace recorder. Separate from
/// [`LspecView`] so that the wrapper's type bound stays minimal: checkers
/// may look deeper than wrappers.
pub trait TmeIntrospect {
    /// Captures the current `Lspec`-relevant state.
    fn snapshot(&self) -> ProcSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl LspecView for Fake {
        fn lspec_id(&self) -> ProcessId {
            ProcessId(1)
        }
        fn lspec_n(&self) -> usize {
            4
        }
        fn mode(&self) -> Mode {
            Mode::Hungry
        }
        fn req(&self) -> Timestamp {
            Timestamp::new(3, ProcessId(1))
        }
        fn my_req_precedes(&self, k: ProcessId) -> bool {
            k.0 > 1
        }
    }

    #[test]
    fn peers_excludes_self() {
        let peers = Fake.peers();
        assert_eq!(peers, vec![ProcessId(0), ProcessId(2), ProcessId(3)]);
    }

    #[test]
    fn snapshot_precedes_all_ignores_own_slot() {
        let snap = ProcSnapshot {
            pid: ProcessId(1),
            mode: Mode::Hungry,
            req: Timestamp::new(3, ProcessId(1)),
            now_ts: Timestamp::new(3, ProcessId(1)),
            precedes: vec![true, false, true],
            local_req: vec![None, None, None],
        };
        assert!(snap.precedes_all());
        let snap2 = ProcSnapshot {
            precedes: vec![false, false, true],
            ..snap
        };
        assert!(!snap2.precedes_all());
    }
}
