use std::fmt;

use graybox_clock::{ProcessId, Timestamp};
use graybox_rng::RngCore;
use graybox_simnet::Corruptible;

/// The TME protocol message vocabulary.
///
/// * `Request(REQ_j)` — the "send(REQ_j, j, k)" of Request Spec; carries
///   the sender's current request timestamp. Also re-sent by the graybox
///   wrapper `W`.
/// * `Reply(ts)` — the reply of Reply Spec; carries the replier's current
///   request timestamp (Ricart–Agrawala) or logical clock (Lamport).
/// * `Release(ts)` — Lamport's release broadcast (Ricart–Agrawala does not
///   use it; an implementation must tolerate receiving one anyway, since
///   the fault model can inject arbitrary messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TmeMsg {
    /// A (possibly re-sent) critical-section request.
    Request(Timestamp),
    /// A reply granting precedence to the addressee.
    Reply(Timestamp),
    /// A release notification (Lamport's algorithm).
    Release(Timestamp),
}

impl TmeMsg {
    /// The timestamp carried by the message.
    pub fn timestamp(self) -> Timestamp {
        match self {
            TmeMsg::Request(ts) | TmeMsg::Reply(ts) | TmeMsg::Release(ts) => ts,
        }
    }

    /// True for request messages.
    pub fn is_request(self) -> bool {
        matches!(self, TmeMsg::Request(_))
    }
}

impl fmt::Display for TmeMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmeMsg::Request(ts) => write!(f, "request({ts})"),
            TmeMsg::Reply(ts) => write!(f, "reply({ts})"),
            TmeMsg::Release(ts) => write!(f, "release({ts})"),
        }
    }
}

impl Corruptible for TmeMsg {
    /// Message corruption: the payload becomes an arbitrary type-valid
    /// message — kind, clock value, and claimed origin all scrambled
    /// (clock values are kept small so corrupted timestamps interact with
    /// legitimate ones rather than vanishing into the far future).
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        let ts = Timestamp::new(
            u64::from(rng.next_u32() % 64),
            ProcessId(rng.next_u32() % 16),
        );
        *self = match rng.next_u32() % 3 {
            0 => TmeMsg::Request(ts),
            1 => TmeMsg::Reply(ts),
            _ => TmeMsg::Release(ts),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox_rng::rngs::SmallRng;
    use graybox_rng::SeedableRng;

    fn ts(time: u64, pid: u32) -> Timestamp {
        Timestamp::new(time, ProcessId(pid))
    }

    #[test]
    fn timestamp_is_extracted_from_every_kind() {
        assert_eq!(TmeMsg::Request(ts(1, 0)).timestamp(), ts(1, 0));
        assert_eq!(TmeMsg::Reply(ts(2, 1)).timestamp(), ts(2, 1));
        assert_eq!(TmeMsg::Release(ts(3, 2)).timestamp(), ts(3, 2));
    }

    #[test]
    fn is_request_distinguishes() {
        assert!(TmeMsg::Request(ts(1, 0)).is_request());
        assert!(!TmeMsg::Reply(ts(1, 0)).is_request());
    }

    #[test]
    fn corruption_produces_all_kinds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut kinds = [false; 3];
        for _ in 0..64 {
            let mut msg = TmeMsg::Request(ts(0, 0));
            msg.corrupt(&mut rng);
            match msg {
                TmeMsg::Request(_) => kinds[0] = true,
                TmeMsg::Reply(_) => kinds[1] = true,
                TmeMsg::Release(_) => kinds[2] = true,
            }
        }
        assert_eq!(kinds, [true, true, true]);
    }

    #[test]
    fn display_shows_kind_and_timestamp() {
        assert_eq!(TmeMsg::Request(ts(4, 1)).to_string(), "request(4@p1)");
    }
}
