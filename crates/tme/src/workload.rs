use graybox_clock::ProcessId;
use graybox_rng::rngs::SmallRng;
use graybox_rng::{Rng, SeedableRng};
use graybox_simnet::{Process, SimTime, Simulation};

use crate::TmeClient;

/// Parameters of a randomized TME client workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of processes.
    pub n: usize,
    /// Number of CS requests each process issues.
    pub requests_per_process: usize,
    /// Mean thinking time between a process's requests, in ticks.
    pub mean_think: u64,
    /// Critical-section duration per request, in ticks.
    pub eat_for: u64,
    /// Time of the first possible request.
    pub start: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n: 3,
            requests_per_process: 3,
            mean_think: 40,
            eat_for: 5,
            start: 1,
        }
    }
}

/// A reproducible client request schedule: which process asks for the CS
/// when (the client side of the paper's Client Spec). Thinking times are
/// jittered uniformly in `[mean/2, 3*mean/2]` from a seeded RNG.
///
/// Note that requests are *stimuli*: a process still hungry when its next
/// request fires simply ignores it (Structural Spec), so heavy contention
/// degrades gracefully.
///
/// # Example
///
/// ```
/// use graybox_tme::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(WorkloadConfig::default(), 7);
/// assert_eq!(w.events().len(), 9); // 3 processes × 3 requests
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    events: Vec<(SimTime, ProcessId, TmeClient)>,
}

impl Workload {
    /// Generates the schedule for `config` from `seed`.
    pub fn generate(config: WorkloadConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for pid in ProcessId::all(config.n) {
            let mut at = SimTime::from(config.start);
            for _ in 0..config.requests_per_process {
                let jitter = if config.mean_think == 0 {
                    0
                } else {
                    rng.gen_range(config.mean_think / 2..=config.mean_think * 3 / 2)
                };
                at += jitter;
                events.push((
                    at,
                    pid,
                    TmeClient::Request {
                        eat_for: config.eat_for,
                    },
                ));
            }
        }
        events.sort_by_key(|&(time, pid, _)| (time, pid));
        Workload { events }
    }

    /// A fully synchronized, maximum-contention workload: every process
    /// requests at the same instants, `rounds` times, `interval` ticks
    /// apart. The hardest case for FCFS and fairness checking — all
    /// requests of a round are causally concurrent.
    pub fn synchronized(n: usize, rounds: usize, interval: u64, eat_for: u64) -> Self {
        let mut events = Vec::with_capacity(n * rounds);
        for round in 0..rounds {
            let at = SimTime::from(1 + round as u64 * interval.max(1));
            for pid in ProcessId::all(n) {
                events.push((at, pid, TmeClient::Request { eat_for }));
            }
        }
        events.sort_by_key(|&(time, pid, _)| (time, pid));
        Workload { events }
    }

    /// The scheduled events, time-ordered.
    pub fn events(&self) -> &[(SimTime, ProcessId, TmeClient)] {
        &self.events
    }

    /// Time of the last scheduled request.
    pub fn last_request_at(&self) -> SimTime {
        self.events
            .last()
            .map_or(SimTime::ZERO, |&(time, _, _)| time)
    }

    /// Installs the schedule into a simulation whose client event type is
    /// [`TmeClient`].
    pub fn apply<P>(&self, sim: &mut Simulation<P>)
    where
        P: Process<Client = TmeClient>,
    {
        for &(time, pid, event) in &self.events {
            sim.schedule_client(time, pid, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = WorkloadConfig::default();
        let a = Workload::generate(config, 1);
        let b = Workload::generate(config, 1);
        assert_eq!(a.events(), b.events());
        let c = Workload::generate(config, 2);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn every_process_gets_its_requests() {
        let config = WorkloadConfig {
            n: 4,
            requests_per_process: 5,
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(config, 3);
        for pid in ProcessId::all(4) {
            let count = w.events().iter().filter(|&&(_, p, _)| p == pid).count();
            assert_eq!(count, 5);
        }
    }

    #[test]
    fn events_are_time_sorted() {
        let w = Workload::generate(WorkloadConfig::default(), 9);
        let times: Vec<_> = w.events().iter().map(|&(t, _, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        assert!(w.last_request_at() >= *times.first().unwrap());
    }

    #[test]
    fn synchronized_rounds_are_simultaneous() {
        let w = Workload::synchronized(3, 2, 100, 5);
        assert_eq!(w.events().len(), 6);
        let first_round: Vec<_> = w.events().iter().take(3).map(|&(t, _, _)| t).collect();
        assert!(first_round.iter().all(|&t| t == SimTime::from(1)));
        assert_eq!(w.last_request_at(), SimTime::from(101));
    }

    #[test]
    fn zero_think_time_is_legal() {
        let config = WorkloadConfig {
            mean_think: 0,
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(config, 1);
        assert!(w.events().iter().all(|&(t, _, _)| t == SimTime::from(1)));
    }
}
