//! # Graybox Stabilization
//!
//! A full reproduction of **"Graybox Stabilization"** (Arora, Demirbas,
//! Kulkarni; DSN 2001) as a Rust workspace. This facade crate re-exports
//! every subsystem so examples and downstream users can depend on a single
//! crate.
//!
//! The paper shows that *self-stabilization* can be added to a distributed
//! system knowing only its **specification** (graybox), not its
//! implementation (whitebox), provided the specification is a *local
//! everywhere* specification. The case study is timestamp-based distributed
//! mutual exclusion (TME): a single wrapper `W` — re-send your request to the
//! peers your local copies claim are "earlier" while you are hungry — renders
//! *every* everywhere-implementation of the local specification `Lspec`
//! stabilizing, including Ricart–Agrawala and (modified) Lamport mutual
//! exclusion.
//!
//! ## Layout
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `graybox-core` | fusion-closed systems, box composition, stabilization model checking, guarded commands |
//! | [`clock`] | `graybox-clock` | Lamport clocks, totally-ordered timestamps, happened-before recorder |
//! | [`simnet`] | `graybox-simnet` | deterministic discrete-event simulator, FIFO channels, fault model |
//! | [`tme`] | `graybox-tme` | `Lspec` interface + Ricart–Agrawala, Lamport, and an independent third implementation |
//! | [`spec`] | `graybox-spec` | trace checkers for every conjunct of `Lspec` and `TME_Spec` |
//! | [`wrapper`] | `graybox-wrapper` | the graybox wrapper `W` and its timeout refinement `W'` |
//! | [`faults`] | `graybox-faults` | failpoint-keyed fault plans, the §4 deadlock scenario, campaign runner, replay + schedule shrinker |
//! | [`experiments`] | `graybox-experiments` | the harness regenerating every table/figure in EXPERIMENTS.md |
//!
//! ## Quickstart
//!
//! ```
//! use graybox::faults::{run_tme, RunConfig};
//! use graybox::tme::Implementation;
//! use graybox::wrapper::WrapperConfig;
//!
//! // Five Ricart–Agrawala processes, wrapped, with a burst of state
//! // corruption mid-run: the system stabilizes.
//! let config = RunConfig::new(5, Implementation::RicartAgrawala)
//!     .wrapper(WrapperConfig::timeout(8))
//!     .seed(42);
//! let outcome = run_tme(&config);
//! assert!(outcome.verdict.stabilized);
//! ```

pub use graybox_clock as clock;
pub use graybox_core as core;
pub use graybox_experiments as experiments;
pub use graybox_faults as faults;
pub use graybox_simnet as simnet;
pub use graybox_spec as spec;
pub use graybox_tme as tme;
pub use graybox_wrapper as wrapper;
