//! Integration: Theorem 8 — the wrapped system stabilizes under every
//! fault class of §3.1, in combinations the unit tests do not cover.

use graybox::faults::{run_tme, scenarios, FaultKind, FaultPlan, RunConfig};
use graybox::simnet::SimTime;
use graybox::tme::{Implementation, WorkloadConfig};
use graybox::wrapper::WrapperConfig;

fn storm(seed: u64, count: usize) -> FaultPlan {
    FaultPlan::random_mix(seed, (40, 300), count, &FaultKind::ALL)
}

#[test]
fn each_fault_kind_alone_is_survived_by_every_implementation() {
    for implementation in Implementation::ALL {
        for kind in FaultKind::ALL {
            let config = RunConfig::new(3, implementation)
                .wrapper(WrapperConfig::timeout(8))
                .seed(13)
                .faults(FaultPlan::burst(kind, SimTime::from(70), 3));
            let outcome = run_tme(&config);
            assert!(
                outcome.verdict.stabilized,
                "{implementation} did not stabilize after {kind} burst"
            );
        }
    }
}

#[test]
fn heavy_mixed_storm_with_many_faults() {
    // 25 faults of every kind: still a *finite* number, so Theorem 8
    // applies and the system must stabilize.
    for implementation in Implementation::ALL {
        let config = RunConfig::new(4, implementation)
            .wrapper(WrapperConfig::timeout(8))
            .seed(21)
            .workload(WorkloadConfig {
                n: 4,
                requests_per_process: 4,
                mean_think: 40,
                eat_for: 4,
                start: 1,
            })
            .faults(storm(21, 25));
        let outcome = run_tme(&config);
        assert!(
            outcome.verdict.stabilized,
            "{implementation} lost to a 25-fault storm"
        );
        assert_eq!(outcome.verdict.starved, 0);
    }
}

#[test]
fn eager_wrapper_w_theta_zero_also_stabilizes() {
    // The paper's W (continuous resend) is the θ=0 endpoint of W'.
    let config = RunConfig::new(3, Implementation::Lamport)
        .wrapper(WrapperConfig::eager())
        .seed(17)
        .faults(storm(17, 10));
    let outcome = run_tme(&config);
    assert!(outcome.verdict.stabilized);
}

#[test]
fn unrefined_wrapper_also_stabilizes_but_sends_more() {
    let run = |wrapper: WrapperConfig| {
        let config = RunConfig::new(3, Implementation::RicartAgrawala)
            .wrapper(wrapper)
            .seed(23)
            .faults(storm(23, 8));
        run_tme(&config)
    };
    let refined = run(WrapperConfig::timeout(8));
    let unrefined = run(WrapperConfig::unrefined(8));
    assert!(refined.verdict.stabilized);
    assert!(unrefined.verdict.stabilized);
    assert!(
        refined.wrapper_resends <= unrefined.wrapper_resends,
        "refinement must not send more: {} vs {}",
        refined.wrapper_resends,
        unrefined.wrapper_resends
    );
}

#[test]
fn deadlock_recovers_at_every_theta() {
    for theta in [0u64, 2, 8, 32, 128] {
        let config = RunConfig::new(2, Implementation::RicartAgrawala)
            .wrapper(WrapperConfig::timeout(theta))
            .seed(29)
            .horizon(SimTime::from(10_000));
        let (_, outcome) = scenarios::deadlock(&config);
        assert!(outcome.verdict.stabilized, "θ={theta} failed to recover");
        assert_eq!(outcome.total_entries, 2);
    }
}

#[test]
fn larger_systems_stabilize_too() {
    let config = RunConfig::new(8, Implementation::RicartAgrawala)
        .wrapper(WrapperConfig::timeout(8))
        .seed(37)
        .workload(WorkloadConfig {
            n: 8,
            requests_per_process: 2,
            mean_think: 60,
            eat_for: 3,
            start: 1,
        })
        .faults(storm(37, 12));
    let outcome = run_tme(&config);
    assert!(outcome.verdict.stabilized);
}

#[test]
fn faults_after_quiescence_are_also_recovered() {
    // Faults that strike when all work is done (thinking, empty channels):
    // corruption can fabricate hungry/eating states out of thin air; the
    // system must still converge back to legitimate behaviour.
    for implementation in Implementation::ALL {
        let config = RunConfig::new(3, implementation)
            .wrapper(WrapperConfig::timeout(8))
            .seed(41)
            .workload(WorkloadConfig {
                n: 3,
                requests_per_process: 1,
                mean_think: 10,
                eat_for: 2,
                start: 1,
            })
            // Workload is finished long before t=500.
            .faults(FaultPlan::burst(
                FaultKind::CorruptProcess,
                SimTime::from(500),
                3,
            ));
        let outcome = run_tme(&config);
        assert!(
            outcome.verdict.stabilized,
            "{implementation}: post-quiescence corruption not recovered"
        );
    }
}

#[test]
fn unwrapped_system_fails_visibly_not_silently() {
    // The baseline's failure mode is what motivates the paper: verify the
    // harness actually reports it (no false positives for the wrapper).
    let config = RunConfig::new(2, Implementation::RicartAgrawala).seed(43);
    let (_, outcome) = scenarios::deadlock(&config);
    assert!(!outcome.verdict.stabilized);
    assert!(outcome.verdict.starved > 0);
    assert_eq!(outcome.total_entries, 0);
}
