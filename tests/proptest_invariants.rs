//! Property-based tests over the core data structures and theorems.
//!
//! proptest drives randomized instances through the invariants the rest of
//! the workspace relies on: the total order `lt`, the box-operator
//! algebra, the composition theorems, FIFO channels, and the `Mode` state
//! machine.

use graybox::clock::{LamportClock, ProcessId, Timestamp};
use graybox::core::fairness::check_fair_theorem1;
use graybox::core::randsys::{random_subsystem, random_system, random_wrapper_pair};
use graybox::core::theorems::{check_lemma0, check_theorem1};
use graybox::core::{box_compose, everywhere_implements, implements_from_init};
use graybox::tme::Mode;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn ts() -> impl Strategy<Value = Timestamp> {
    (0u64..100, 0u32..8).prop_map(|(time, pid)| Timestamp::new(time, ProcessId(pid)))
}

proptest! {
    #[test]
    fn lt_is_a_strict_total_order(a in ts(), b in ts(), c in ts()) {
        // Irreflexive.
        prop_assert!(!a.lt(a));
        // Total on distinct values.
        if a != b {
            prop_assert!(a.lt(b) ^ b.lt(a));
        }
        // Transitive.
        if a.lt(b) && b.lt(c) {
            prop_assert!(a.lt(c));
        }
    }

    #[test]
    fn lamport_clocks_respect_happened_before(seed in 0u64..500) {
        // Random interleaving of local events and message edges between
        // two clocks: along every actual hb edge, timestamps increase.
        let mut a = LamportClock::new(ProcessId(0));
        let mut b = LamportClock::new(ProcessId(1));
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            use rand::Rng;
            match rng.gen_range(0..4u8) {
                0 => {
                    let before = a.now();
                    let after = a.tick();
                    prop_assert!(before.lt(after)); // process order
                }
                1 => {
                    let before = b.now();
                    let after = b.tick();
                    prop_assert!(before.lt(after));
                }
                2 => {
                    let send = a.tick(); // send event at a …
                    let recv = b.receive(send); // … received at b
                    prop_assert!(send.lt(recv)); // message edge
                }
                _ => {
                    let send = b.tick();
                    let recv = a.receive(send);
                    prop_assert!(send.lt(recv));
                }
            }
        }
    }

    #[test]
    fn box_operator_algebra(seed in 0u64..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_system(&mut rng, 8, 3, 0.5);
        let b = random_system(&mut rng, 8, 3, 0.5);
        let c = random_system(&mut rng, 8, 3, 0.5);
        // Commutative, associative, idempotent.
        prop_assert_eq!(box_compose(&a, &b).unwrap(), box_compose(&b, &a).unwrap());
        prop_assert_eq!(
            box_compose(&box_compose(&a, &b).unwrap(), &c).unwrap(),
            box_compose(&a, &box_compose(&b, &c).unwrap()).unwrap()
        );
        prop_assert_eq!(box_compose(&a, &a).unwrap(), a.clone());
        // Components everywhere-implement the composition... no: the
        // composition is a superset, so each component refines it.
        prop_assert!(everywhere_implements(&a, &box_compose(&a, &b).unwrap()));
    }

    #[test]
    fn subsystems_implement_their_specs(seed in 0u64..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = random_system(&mut rng, 10, 4, 0.5);
        let sub = random_subsystem(&mut rng, &spec);
        prop_assert!(everywhere_implements(&sub, &spec));
        prop_assert!(implements_from_init(&sub, &spec));
        // Transitivity through a middle layer.
        let subsub = random_subsystem(&mut rng, &sub);
        prop_assert!(everywhere_implements(&subsub, &spec));
    }

    #[test]
    fn composition_theorems_never_falsified(seed in 0u64..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_system(&mut rng, 9, 3, 0.4);
        let c = random_subsystem(&mut rng, &a);
        let (w, w_prime) = random_wrapper_pair(&mut rng, 9, 3);
        prop_assert!(check_lemma0(&c, &a, &w_prime, &w).unwrap().validated());
        prop_assert!(check_theorem1(&c, &a, &w_prime, &w).unwrap().validated());
        prop_assert!(check_fair_theorem1(&c, &a, &w_prime, &w).unwrap().validated());
    }

    #[test]
    fn mode_flow_is_a_cycle(mode in prop_oneof![
        Just(Mode::Thinking), Just(Mode::Hungry), Just(Mode::Eating)
    ]) {
        // Exactly two successors are allowed from every mode: itself and
        // the next mode around the t -> h -> e cycle.
        let allowed = [Mode::Thinking, Mode::Hungry, Mode::Eating]
            .into_iter()
            .filter(|&next| mode.flow_allows(next))
            .count();
        prop_assert_eq!(allowed, 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fifo_channels_deliver_in_order_under_random_delays(seed in 0u64..200, count in 1usize..30) {
        use graybox::simnet::{Context, Process, SimConfig, SimTime, Simulation};

        #[derive(Debug)]
        struct Sink(ProcessId, Vec<u64>);
        impl Process for Sink {
            type Msg = u64;
            type Client = ();
            fn id(&self) -> ProcessId { self.0 }
            fn on_message(&mut self, _: ProcessId, msg: u64, _: &mut Context<u64>) {
                self.1.push(msg);
            }
            fn on_timer(&mut self, _: u32, _: &mut Context<u64>) {}
            fn on_client(&mut self, _: (), _: &mut Context<u64>) {}
        }

        let mut sim = Simulation::new(
            vec![Sink(ProcessId(0), vec![]), Sink(ProcessId(1), vec![])],
            SimConfig { seed, min_delay: 1, max_delay: 20, fifo: true },
        );
        for i in 0..count as u64 {
            sim.inject_message(ProcessId(0), ProcessId(1), i);
        }
        sim.run_until(SimTime::from(10_000));
        let received = &sim.process(ProcessId(1)).1;
        let expected: Vec<u64> = (0..count as u64).collect();
        prop_assert_eq!(received, &expected);
    }

    #[test]
    fn wrapped_deadlock_recovery_is_universal(seed in 0u64..40, theta in 0u64..32) {
        use graybox::faults::{scenarios, RunConfig};
        use graybox::simnet::SimTime;
        use graybox::tme::Implementation;
        use graybox::wrapper::WrapperConfig;

        let config = RunConfig::new(2, Implementation::RicartAgrawala)
            .wrapper(WrapperConfig::timeout(theta))
            .seed(seed)
            .horizon(SimTime::from(6_000));
        let (_, outcome) = scenarios::deadlock(&config);
        prop_assert!(outcome.verdict.stabilized, "seed {} θ {} failed", seed, theta);
        prop_assert_eq!(outcome.total_entries, 2);
    }
}
