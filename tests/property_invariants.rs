//! Property-based tests over the core data structures and theorems.
//!
//! Seeded random instances (via the in-repo `graybox-rng`, so the suite
//! runs with no registry access) drive the invariants the rest of the
//! workspace relies on: the total order `lt`, the box-operator algebra,
//! the composition theorems, FIFO channels, and the `Mode` state machine.
//! Every case is a pure function of its seed, so a failure message's seed
//! reproduces it exactly.

use graybox::clock::{LamportClock, ProcessId, Timestamp};
use graybox::core::fairness::check_fair_theorem1;
use graybox::core::randsys::{random_subsystem, random_system, random_wrapper_pair};
use graybox::core::sweep::sweep_seeds;
use graybox::core::theorems::{check_lemma0, check_theorem1};
use graybox::core::{box_compose, everywhere_implements, implements_from_init};
use graybox::tme::Mode;
use graybox_rng::rngs::SmallRng;
use graybox_rng::{Rng, SeedableRng};

fn ts(rng: &mut SmallRng) -> Timestamp {
    Timestamp::new(rng.gen_range(0u64..100), ProcessId(rng.gen_range(0u32..8)))
}

#[test]
fn lt_is_a_strict_total_order() {
    for seed in 0..1_000u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (a, b, c) = (ts(&mut rng), ts(&mut rng), ts(&mut rng));
        // Irreflexive.
        assert!(!a.lt(a), "seed {seed}");
        // Total on distinct values.
        if a != b {
            assert!(a.lt(b) ^ b.lt(a), "seed {seed}");
        }
        // Transitive.
        if a.lt(b) && b.lt(c) {
            assert!(a.lt(c), "seed {seed}");
        }
    }
}

#[test]
fn lamport_clocks_respect_happened_before() {
    for seed in 0..500u64 {
        // Random interleaving of local events and message edges between
        // two clocks: along every actual hb edge, timestamps increase.
        let mut a = LamportClock::new(ProcessId(0));
        let mut b = LamportClock::new(ProcessId(1));
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            match rng.gen_range(0..4u8) {
                0 => {
                    let before = a.now();
                    let after = a.tick();
                    assert!(before.lt(after), "seed {seed}"); // process order
                }
                1 => {
                    let before = b.now();
                    let after = b.tick();
                    assert!(before.lt(after), "seed {seed}");
                }
                2 => {
                    let send = a.tick(); // send event at a …
                    let recv = b.receive(send); // … received at b
                    assert!(send.lt(recv), "seed {seed}"); // message edge
                }
                _ => {
                    let send = b.tick();
                    let recv = a.receive(send);
                    assert!(send.lt(recv), "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn box_operator_algebra() {
    for seed in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_system(&mut rng, 8, 3, 0.5);
        let b = random_system(&mut rng, 8, 3, 0.5);
        let c = random_system(&mut rng, 8, 3, 0.5);
        // Commutative, associative, idempotent.
        assert_eq!(
            box_compose(&a, &b).unwrap(),
            box_compose(&b, &a).unwrap(),
            "seed {seed}"
        );
        assert_eq!(
            box_compose(&box_compose(&a, &b).unwrap(), &c).unwrap(),
            box_compose(&a, &box_compose(&b, &c).unwrap()).unwrap(),
            "seed {seed}"
        );
        assert_eq!(box_compose(&a, &a).unwrap(), a.clone(), "seed {seed}");
        // The composition is a superset, so each component refines it.
        assert!(
            everywhere_implements(&a, &box_compose(&a, &b).unwrap()),
            "seed {seed}"
        );
    }
}

#[test]
fn subsystems_implement_their_specs() {
    for seed in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = random_system(&mut rng, 10, 4, 0.5);
        let sub = random_subsystem(&mut rng, &spec);
        assert!(everywhere_implements(&sub, &spec), "seed {seed}");
        assert!(implements_from_init(&sub, &spec), "seed {seed}");
        // Transitivity through a middle layer.
        let subsub = random_subsystem(&mut rng, &sub);
        assert!(everywhere_implements(&subsub, &spec), "seed {seed}");
    }
}

#[test]
fn composition_theorems_never_falsified() {
    // Independent per-seed checks: fan them out over the sweep driver,
    // which doubles as an integration test of the driver itself.
    let failures = sweep_seeds(0..300u64, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_system(&mut rng, 9, 3, 0.4);
        let c = random_subsystem(&mut rng, &a);
        let (w, w_prime) = random_wrapper_pair(&mut rng, 9, 3);
        let ok = check_lemma0(&c, &a, &w_prime, &w).unwrap().validated()
            && check_theorem1(&c, &a, &w_prime, &w).unwrap().validated()
            && check_fair_theorem1(&c, &a, &w_prime, &w)
                .unwrap()
                .validated();
        (!ok).then_some(seed)
    });
    let failures: Vec<u64> = failures.into_iter().flatten().collect();
    assert!(failures.is_empty(), "falsified at seeds {failures:?}");
}

#[test]
fn mode_flow_is_a_cycle() {
    for mode in [Mode::Thinking, Mode::Hungry, Mode::Eating] {
        // Exactly two successors are allowed from every mode: itself and
        // the next mode around the t -> h -> e cycle.
        let allowed = [Mode::Thinking, Mode::Hungry, Mode::Eating]
            .into_iter()
            .filter(|&next| mode.flow_allows(next))
            .count();
        assert_eq!(allowed, 2);
    }
}

#[test]
fn fifo_channels_deliver_in_order_under_random_delays() {
    use graybox::simnet::{Context, Process, SimConfig, SimTime, Simulation};

    #[derive(Debug)]
    struct Sink(ProcessId, Vec<u64>);
    impl Process for Sink {
        type Msg = u64;
        type Client = ();
        fn id(&self) -> ProcessId {
            self.0
        }
        fn on_message(&mut self, _: ProcessId, msg: u64, _: &mut Context<u64>) {
            self.1.push(msg);
        }
        fn on_timer(&mut self, _: u32, _: &mut Context<u64>) {}
        fn on_client(&mut self, _: (), _: &mut Context<u64>) {}
    }

    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1F0);
        let count = rng.gen_range(1usize..30);
        let mut sim = Simulation::new(
            vec![Sink(ProcessId(0), vec![]), Sink(ProcessId(1), vec![])],
            SimConfig {
                seed,
                min_delay: 1,
                max_delay: 20,
                fifo: true,
            },
        );
        for i in 0..count as u64 {
            sim.inject_message(ProcessId(0), ProcessId(1), i);
        }
        sim.run_until(SimTime::from(10_000));
        let received = &sim.process(ProcessId(1)).1;
        let expected: Vec<u64> = (0..count as u64).collect();
        assert_eq!(received, &expected, "seed {seed} count {count}");
    }
}

#[test]
fn wrapped_deadlock_recovery_is_universal() {
    use graybox::faults::{scenarios, RunConfig};
    use graybox::simnet::SimTime;
    use graybox::tme::Implementation;
    use graybox::wrapper::WrapperConfig;

    let failures = sweep_seeds(0..32u64, |case| {
        // Vary both the scenario seed and the wrapper timeout θ.
        let mut rng = SmallRng::seed_from_u64(case ^ 0xDEAD);
        let seed = rng.gen_range(0u64..40);
        let theta = rng.gen_range(0u64..32);
        let config = RunConfig::new(2, Implementation::RicartAgrawala)
            .wrapper(WrapperConfig::timeout(theta))
            .seed(seed)
            .horizon(SimTime::from(6_000));
        let (_, outcome) = scenarios::deadlock(&config);
        let ok = outcome.verdict.stabilized && outcome.total_entries == 2;
        (!ok).then_some((seed, theta))
    });
    let failures: Vec<(u64, u64)> = failures.into_iter().flatten().collect();
    assert!(failures.is_empty(), "failed (seed, θ) pairs: {failures:?}");
}
