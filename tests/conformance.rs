//! Integration: fault-free conformance across crates (Theorems 5, 9, 10).
//!
//! Exercises the full stack — simulator, implementations, wrapper, trace
//! recorder, every checker — on parameters the per-crate unit tests do not
//! use.

use graybox::clock::ProcessId;
use graybox::faults::{run_tme_trace, RunConfig};
use graybox::simnet::{SimConfig, SimTime, Simulation};
use graybox::spec::lspec::{self, DEFAULT_GRACE};
use graybox::spec::{convergence, tme_spec, TraceRecorder};
use graybox::tme::{Implementation, TmeProcess, Workload, WorkloadConfig};
use graybox::wrapper::WrapperConfig;

fn workload(n: usize, requests: usize) -> WorkloadConfig {
    WorkloadConfig {
        n,
        requests_per_process: requests,
        mean_think: 35,
        eat_for: 6,
        start: 1,
    }
}

#[test]
fn every_implementation_satisfies_both_specs_fault_free() {
    for implementation in Implementation::ALL {
        for n in [2usize, 4, 6] {
            let config = RunConfig::new(n, implementation)
                .seed(100 + n as u64)
                .workload(workload(n, 3));
            let (trace, outcome) = run_tme_trace(&config);
            let lspec_report = lspec::check_all(&trace, DEFAULT_GRACE);
            assert!(
                lspec_report.holds(),
                "{implementation} n={n}: {:?}",
                lspec_report.violated_conjuncts()
            );
            let tme_report = tme_spec::check_all(&trace, DEFAULT_GRACE);
            assert!(
                tme_report.holds(),
                "{implementation} n={n}: TME_Spec violated"
            );
            assert!(outcome.verdict.stabilized);
            assert_eq!(outcome.verdict.convergence_ticks, Some(0));
            // Requests arriving while a process is still hungry are ignored
            // (Structural Spec), so under contention fewer than n*3 can be
            // served — but each process's first request always is.
            assert!(outcome.total_entries >= n as u64);
            assert!(outcome.total_entries <= n as u64 * 3);
        }
    }
}

#[test]
fn wrapped_systems_also_conform_fault_free() {
    // Lemma 6 (interference freedom) across sizes and θ values.
    for implementation in Implementation::ALL {
        for theta in [0u64, 8, 32] {
            let n = 4;
            let config = RunConfig::new(n, implementation)
                .wrapper(WrapperConfig::timeout(theta))
                .seed(7 + theta)
                .workload(workload(n, 2));
            let (trace, outcome) = run_tme_trace(&config);
            let report = lspec::check_all(&trace, DEFAULT_GRACE);
            assert!(
                report.holds(),
                "{implementation} θ={theta}: wrapper interfered: {:?}",
                report.violated_conjuncts()
            );
            assert!(outcome.total_entries >= n as u64);
        }
    }
}

#[test]
fn invariant_i_holds_throughout_legitimate_runs() {
    for implementation in Implementation::ALL {
        let n = 3;
        let procs = (0..u32::try_from(n).unwrap())
            .map(|i| TmeProcess::new(implementation, ProcessId(i), n))
            .collect();
        let mut sim = Simulation::new(procs, SimConfig::with_seed(55));
        Workload::generate(workload(n, 4), 55).apply(&mut sim);
        let mut recorder = TraceRecorder::new(&sim);
        recorder.run_until(&mut sim, SimTime::from(4_000));
        let trace = recorder.into_trace();
        assert!(
            lspec::check_invariant_i(&trace).holds(),
            "{implementation}: invariant I violated in a fault-free run"
        );
        let analysis = convergence::analyze(&trace, DEFAULT_GRACE);
        assert_eq!(analysis.converged_at, Some(SimTime::ZERO));
    }
}

#[test]
fn fcfs_holds_under_heavy_contention() {
    // Zero thinking time: every process re-requests as fast as it can.
    for implementation in Implementation::ALL {
        let n = 4;
        let config = RunConfig::new(n, implementation)
            .seed(77)
            .workload(WorkloadConfig {
                n,
                requests_per_process: 6,
                mean_think: 5,
                eat_for: 2,
                start: 1,
            });
        let (trace, _) = run_tme_trace(&config);
        let me3 = tme_spec::check_me3(&trace);
        assert!(
            me3.holds(),
            "{implementation}: FCFS violated under contention"
        );
        let me1 = tme_spec::check_me1(&trace);
        assert!(
            me1.holds(),
            "{implementation}: ME1 violated under contention"
        );
    }
}

#[test]
fn slow_network_does_not_break_conformance() {
    for implementation in Implementation::ALL {
        let mut config = RunConfig::new(3, implementation)
            .seed(31)
            .workload(workload(3, 2));
        config.delays = (10, 60); // an order of magnitude slower than eat times
        let (trace, outcome) = run_tme_trace(&config);
        let report = tme_spec::check_all(&trace, DEFAULT_GRACE);
        assert!(report.holds(), "{implementation} with slow network");
        assert!(outcome.total_entries >= 3);
    }
}

#[test]
fn synchronized_max_contention_preserves_safety() {
    // Every process requests at the same instants — all requests of a
    // round are causally concurrent, the hardest case for ME1/ME3.
    use graybox::simnet::{SimConfig, SimTime, Simulation};
    use graybox::tme::Workload;
    for implementation in Implementation::ALL {
        let n = 5;
        let procs = (0..u32::try_from(n).unwrap())
            .map(|i| TmeProcess::new(implementation, ProcessId(i), n))
            .collect();
        let mut sim = Simulation::new(procs, SimConfig::with_seed(88));
        Workload::synchronized(n, 3, 200, 4).apply(&mut sim);
        let mut recorder = TraceRecorder::new(&sim);
        recorder.run_until(&mut sim, SimTime::from(3_000));
        let trace = recorder.into_trace();
        let report = tme_spec::check_all(&trace, DEFAULT_GRACE);
        assert!(
            report.holds(),
            "{implementation} under synchronized contention"
        );
        // Every round serves every process exactly once: 15 grants.
        assert_eq!(
            tme_spec::granted_requests(&trace).len(),
            15,
            "{implementation}"
        );
    }
}
