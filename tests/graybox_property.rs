//! Integration: the graybox property itself.
//!
//! The wrapper was written once, against the `LspecView` trait. This test
//! plays the downstream user: it defines its **own process type** — one the
//! wrapper crate has never seen — and wraps it with the unchanged wrapper.
//! If the wrapper compiled against anything implementation-specific, this
//! file would not build; if it behaviourally depended on implementation
//! internals, the assertions would fail.

use graybox::clock::{ProcessId, Timestamp};
use graybox::simnet::{Context, Corruptible, Process, SimConfig, SimTime, Simulation, TimerTag};
use graybox::spec::lspec::{self, DEFAULT_GRACE};
use graybox::spec::{convergence, TraceRecorder};
use graybox::tme::{
    Implementation, LspecView, Mode, ProcSnapshot, TmeClient, TmeIntrospect, TmeMsg, TmeProcess,
};
use graybox::wrapper::{GrayboxWrapper, WrapperConfig};
use graybox_rng::RngCore;

/// A downstream process type: an instrumented Ricart–Agrawala node that
/// counts handler invocations and delegates the protocol. The wrapper
/// cannot tell it apart from any other `LspecView` implementor.
#[derive(Debug, Clone)]
struct DownstreamNode {
    inner: TmeProcess,
    deliveries: u64,
    timers: u64,
}

impl DownstreamNode {
    fn new(id: ProcessId, n: usize) -> Self {
        DownstreamNode {
            inner: TmeProcess::new(Implementation::RicartAgrawala, id, n),
            deliveries: 0,
            timers: 0,
        }
    }
}

impl Process for DownstreamNode {
    type Msg = TmeMsg;
    type Client = TmeClient;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_start(&mut self, ctx: &mut Context<TmeMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: TmeMsg, ctx: &mut Context<TmeMsg>) {
        self.deliveries += 1;
        self.inner.on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<TmeMsg>) {
        self.timers += 1;
        self.inner.on_timer(tag, ctx);
    }

    fn on_client(&mut self, event: TmeClient, ctx: &mut Context<TmeMsg>) {
        self.inner.on_client(event, ctx);
    }
}

impl LspecView for DownstreamNode {
    fn lspec_id(&self) -> ProcessId {
        self.inner.lspec_id()
    }
    fn lspec_n(&self) -> usize {
        self.inner.lspec_n()
    }
    fn mode(&self) -> Mode {
        LspecView::mode(&self.inner)
    }
    fn req(&self) -> Timestamp {
        self.inner.req()
    }
    fn my_req_precedes(&self, k: ProcessId) -> bool {
        self.inner.my_req_precedes(k)
    }
}

impl TmeIntrospect for DownstreamNode {
    fn snapshot(&self) -> ProcSnapshot {
        self.inner.snapshot()
    }
}

impl Corruptible for DownstreamNode {
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        self.inner.corrupt(rng);
    }
}

type WrappedDownstream = GrayboxWrapper<DownstreamNode>;

fn build(n: usize, theta: u64, seed: u64) -> Simulation<WrappedDownstream> {
    let procs = (0..u32::try_from(n).unwrap())
        .map(|i| {
            GrayboxWrapper::new(
                DownstreamNode::new(ProcessId(i), n),
                WrapperConfig::timeout(theta),
            )
        })
        .collect();
    Simulation::new(procs, SimConfig::with_seed(seed))
}

#[test]
fn the_unchanged_wrapper_stabilizes_a_type_it_never_saw() {
    let n = 3;
    let mut sim = build(n, 6, 9);
    for pid in ProcessId::all(n) {
        sim.schedule_client(SimTime::from(1), pid, TmeClient::Request { eat_for: 3 });
    }
    let mut recorder = TraceRecorder::new(&sim);
    while sim.peek_time().is_some_and(|t| t <= SimTime::from(1)) {
        recorder.step(&mut sim);
    }
    // The §4 deadlock against the downstream type.
    for from in ProcessId::all(n) {
        for to in ProcessId::all(n) {
            sim.flush_channel(from, to);
        }
    }
    recorder.mark_fault(&sim, ProcessId(0), "flush all channels".into());
    recorder.run_until(&mut sim, SimTime::from(3_000));
    let trace = recorder.into_trace();
    let report = convergence::analyze(&trace, DEFAULT_GRACE);
    assert!(report.stabilized(), "downstream type did not stabilize");
    for p in sim.processes() {
        assert_eq!(p.inner().inner.entries(), 1);
        assert!(p.inner().deliveries > 0, "instrumentation still works");
    }
}

#[test]
fn downstream_type_conforms_to_lspec_fault_free() {
    let n = 3;
    let mut sim = build(n, 8, 10);
    for (i, pid) in ProcessId::all(n).enumerate() {
        sim.schedule_client(
            SimTime::from(1 + i as u64 * 20),
            pid,
            TmeClient::Request { eat_for: 4 },
        );
    }
    let mut recorder = TraceRecorder::new(&sim);
    recorder.run_until(&mut sim, SimTime::from(2_000));
    let trace = recorder.into_trace();
    let report = lspec::check_all(&trace, DEFAULT_GRACE);
    assert!(
        report.holds(),
        "violated: {:?}",
        report.violated_conjuncts()
    );
}

#[test]
fn wrapper_survives_corruption_of_the_downstream_type() {
    use graybox_rng::rngs::SmallRng;
    use graybox_rng::SeedableRng;
    let n = 3;
    let mut sim = build(n, 6, 11);
    for pid in ProcessId::all(n) {
        sim.schedule_client(SimTime::from(1), pid, TmeClient::Request { eat_for: 3 });
    }
    let mut recorder = TraceRecorder::new(&sim);
    recorder.run_until(&mut sim, SimTime::from(40));
    let mut rng = SmallRng::seed_from_u64(4);
    for pid in ProcessId::all(n) {
        sim.corrupt_process(pid);
        recorder.mark_fault(&sim, pid, format!("corrupt {pid}"));
    }
    let _ = &mut rng;
    recorder.run_until(&mut sim, SimTime::from(10_000));
    let report = convergence::analyze(&recorder.into_trace(), DEFAULT_GRACE);
    assert!(report.stabilized());
}
