//! Integration: the concluding-remarks extensions through the facade —
//! synthesis, masking/fail-safe tolerance, the §2.2 two-level method, and
//! the exhaustive abstract-TME verification.

use graybox::core::fairness::FairComposition;
use graybox::core::method::{synthesize_level1, synthesize_level2, TwoLevelDesign};
use graybox::core::randsys::{random_subsystem, random_system};
use graybox::core::synthesis::{
    stutter_closure, synthesize_guided_wrapper, synthesize_reset_wrapper, verify_wrapper,
};
use graybox::core::theorems::LocalFamily;
use graybox::core::tme_abstract;
use graybox::core::tolerance::{is_fail_safe, is_masking_with_wrapper, FaultClass};
use graybox::core::{bruteforce, is_stabilizing_to, FiniteSystem};
use graybox_rng::rngs::SmallRng;
use graybox_rng::SeedableRng;

#[test]
fn synthesized_wrappers_verify_and_transfer() {
    for seed in 0..50u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = random_system(&mut rng, 10, 3, 0.3);
        for wrapper in [
            synthesize_reset_wrapper(&spec),
            synthesize_guided_wrapper(&spec),
        ] {
            assert!(verify_wrapper(&spec, &wrapper).unwrap(), "seed {seed}");
            // Transfer to a random everywhere-implementation.
            let closed = stutter_closure(&spec);
            let implementation = random_subsystem(&mut rng, &closed);
            let fair = FairComposition::new(vec![implementation, wrapper]).unwrap();
            assert!(fair.is_stabilizing_to(&closed).holds(), "seed {seed}");
        }
    }
}

#[test]
fn bruteforce_and_scc_deciders_agree_through_the_facade() {
    for seed in 500..700u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_system(&mut rng, 5, 2, 0.5);
        let c = random_system(&mut rng, 5, 2, 0.5);
        assert_eq!(
            is_stabilizing_to(&c, &a).holds(),
            bruteforce::is_stabilizing_bruteforce(&c, &a),
            "seed {seed}"
        );
    }
}

#[test]
fn tolerance_hierarchy_fail_safe_does_not_imply_masking() {
    // spec: 0↔1 legitimate; 2 is a fault state with an allowed recovery.
    let spec = FiniteSystem::builder(3)
        .initial(0)
        .edges([(0, 1), (1, 0), (2, 0), (2, 2)])
        .build()
        .unwrap();
    let faults = FaultClass::new([(0, 2)]);
    let lingering = FiniteSystem::builder(3)
        .initial(0)
        .edges([(0, 1), (1, 0), (2, 2)])
        .build()
        .unwrap();
    assert!(is_fail_safe(&lingering, &faults, &spec));
    // The synthesized wrapper upgrades fail-safe to masking.
    let wrapper = synthesize_reset_wrapper(&spec);
    assert!(is_masking_with_wrapper(&lingering, &wrapper, &faults, &spec).unwrap());
}

#[test]
fn two_level_method_worked_example_via_facade() {
    // Two bit-with-corruption processes; target: agreement.
    let local = FiniteSystem::builder(3)
        .initials([0, 1])
        .edges([(0, 0), (1, 1), (2, 2)])
        .build()
        .unwrap();
    let family = LocalFamily::new(vec![local.clone(), local]);
    let encode = |a: usize, b: usize| family.encode(&[a, b]);
    let mut builder = FiniteSystem::builder(9)
        .initial(encode(0, 0))
        .initial(encode(1, 1))
        .edge(encode(0, 0), encode(1, 1))
        .edge(encode(1, 1), encode(0, 0));
    for state in 0..9 {
        if state != encode(0, 0) && state != encode(1, 1) {
            builder = builder.edge(state, state);
        }
    }
    let target = builder.build().unwrap();
    let system = family.compose().unwrap();

    let level1 = synthesize_level1(&family).unwrap();
    let level2 = synthesize_level2(&family, &target).unwrap();
    let design = TwoLevelDesign::new(level1, level2);
    assert!(design.verify(&system, &target).unwrap());
}

#[test]
fn abstract_tme_verdicts_via_facade() {
    let tme = tme_abstract::build().unwrap();
    assert!(tme.me1_invariant());
    assert!(!tme.unwrapped_stabilizes());
    assert!(tme.wrapped_stabilizes());
}
