//! Integration: one seed, one behaviour — everywhere.
//!
//! Every experiment row in EXPERIMENTS.md must be reproducible from its
//! seed; these tests pin that property across the whole stack, including
//! fault targeting and trace recording.

use graybox::faults::{run_tme, run_tme_trace, scenarios, FaultKind, FaultPlan, RunConfig};
use graybox::spec::TraceEventKind;
use graybox::tme::Implementation;
use graybox::wrapper::WrapperConfig;

fn stormy_config(seed: u64) -> RunConfig {
    RunConfig::new(4, Implementation::Lamport)
        .wrapper(WrapperConfig::timeout(8))
        .seed(seed)
        .faults(FaultPlan::random_mix(seed, (30, 250), 12, &FaultKind::ALL))
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let (trace_a, outcome_a) = run_tme_trace(&stormy_config(5));
    let (trace_b, outcome_b) = run_tme_trace(&stormy_config(5));
    assert_eq!(trace_a.steps().len(), trace_b.steps().len());
    for (a, b) in trace_a.steps().iter().zip(trace_b.steps()) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.pid, b.pid);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.snapshots, b.snapshots);
    }
    assert_eq!(outcome_a.entries, outcome_b.entries);
    assert_eq!(outcome_a.verdict, outcome_b.verdict);
    assert_eq!(outcome_a.wrapper_resends, outcome_b.wrapper_resends);
}

#[test]
fn different_seeds_differ() {
    let a = run_tme(&stormy_config(5));
    let b = run_tme(&stormy_config(6));
    // The workload schedule, delays, and fault targets all change; at
    // minimum the message count differs on these configurations.
    assert_ne!(
        (a.messages_sent, a.wrapper_resends, a.entries.clone()),
        (b.messages_sent, b.wrapper_resends, b.entries.clone())
    );
}

#[test]
fn scenario_runs_are_reproducible() {
    let config = RunConfig::new(3, Implementation::AltRicartAgrawala)
        .wrapper(WrapperConfig::timeout(4))
        .seed(77);
    let (trace_a, a) = scenarios::deadlock(&config);
    let (trace_b, b) = scenarios::deadlock(&config);
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.last_grant_at, b.last_grant_at);
    assert_eq!(trace_a.steps().len(), trace_b.steps().len());
}

#[test]
fn fault_descriptions_are_deterministic() {
    let collect = || -> Vec<String> {
        let (trace, _) = run_tme_trace(&stormy_config(9));
        trace
            .steps()
            .iter()
            .filter_map(|s| match &s.kind {
                TraceEventKind::Fault { description } => Some(description.clone()),
                _ => None,
            })
            .collect()
    };
    assert_eq!(collect(), collect());
}
