//! Integration: one seed, one behaviour — everywhere.
//!
//! Every experiment row in EXPERIMENTS.md must be reproducible from its
//! seed; these tests pin that property across the whole stack, including
//! fault targeting and trace recording.

use graybox::faults::{
    replay_campaign, run_campaign, run_tme, run_tme_trace, scenarios, FaultKind, FaultPlan,
    RunConfig,
};
use graybox::spec::TraceEventKind;
use graybox::tme::Implementation;
use graybox::wrapper::WrapperConfig;

fn stormy_config(seed: u64) -> RunConfig {
    RunConfig::new(4, Implementation::Lamport)
        .wrapper(WrapperConfig::timeout(8))
        .seed(seed)
        .faults(FaultPlan::random_mix(seed, (30, 250), 12, &FaultKind::ALL))
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let (trace_a, outcome_a) = run_tme_trace(&stormy_config(5));
    let (trace_b, outcome_b) = run_tme_trace(&stormy_config(5));
    assert_eq!(trace_a.steps().len(), trace_b.steps().len());
    for (a, b) in trace_a.steps().iter().zip(trace_b.steps()) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.pid, b.pid);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.snapshots, b.snapshots);
    }
    assert_eq!(outcome_a.entries, outcome_b.entries);
    assert_eq!(outcome_a.verdict, outcome_b.verdict);
    assert_eq!(outcome_a.wrapper_resends, outcome_b.wrapper_resends);
}

#[test]
fn different_seeds_differ() {
    let a = run_tme(&stormy_config(5));
    let b = run_tme(&stormy_config(6));
    // The workload schedule, delays, and fault targets all change; at
    // minimum the message count differs on these configurations.
    assert_ne!(
        (a.messages_sent, a.wrapper_resends, a.entries.clone()),
        (b.messages_sent, b.wrapper_resends, b.entries.clone())
    );
}

#[test]
fn scenario_runs_are_reproducible() {
    let config = RunConfig::new(3, Implementation::AltRicartAgrawala)
        .wrapper(WrapperConfig::timeout(4))
        .seed(77);
    let (trace_a, a) = scenarios::deadlock(&config);
    let (trace_b, b) = scenarios::deadlock(&config);
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.last_grant_at, b.last_grant_at);
    assert_eq!(trace_a.steps().len(), trace_b.steps().len());
}

/// The bit-exact determinism property behind replay: the same seed and
/// fault plan produce **byte-identical operation logs** across fresh
/// runs — for every fault kind, FIFO and non-FIFO, over ≥50 seeds. (The
/// oplog records every scheduler pop, RNG draw, and failpoint firing, so
/// byte equality of its text form is full-run bit-exactness, much
/// stronger than matching verdicts.)
#[test]
fn oplogs_are_bit_exact_per_seed_for_every_kind_and_ordering() {
    for seed in 0..50u64 {
        for kind in FaultKind::ALL {
            for fifo in [true, false] {
                let mut config = RunConfig::new(3, Implementation::RicartAgrawala)
                    .wrapper(WrapperConfig::timeout(8))
                    .seed(seed)
                    .faults(FaultPlan::burst(kind, 40.into(), 3));
                if !fifo {
                    config = config.non_fifo();
                }
                let a = run_campaign(&config);
                let b = run_campaign(&config);
                assert_eq!(
                    a.oplog.to_text(),
                    b.oplog.to_text(),
                    "oplogs diverged: seed {seed}, kind {kind}, fifo {fifo}"
                );
                assert_eq!(a.outcome.verdict, b.outcome.verdict);
                assert_eq!(a.failpoints, b.failpoints);
                // Spot-check the replay path across the matrix too.
                if seed % 10 == 0 {
                    let replayed = replay_campaign(&config, &a.oplog).unwrap_or_else(|e| {
                        panic!("replay diverged: seed {seed}, kind {kind}, fifo {fifo}: {e}")
                    });
                    assert_eq!(replayed.outcome.verdict, a.outcome.verdict);
                }
            }
        }
    }
}

#[test]
fn fault_descriptions_are_deterministic() {
    let collect = || -> Vec<String> {
        let (trace, _) = run_tme_trace(&stormy_config(9));
        trace
            .steps()
            .iter()
            .filter_map(|s| match &s.kind {
                TraceEventKind::Fault { description } => Some(description.clone()),
                _ => None,
            })
            .collect()
    };
    assert_eq!(collect(), collect());
}
