//! Scale acceptance for the timer-wheel simulator: a 10⁴-process ring
//! TME under fault traffic must run a full θ-sweep point — warmup,
//! token kill through the oplog'd fault-targeting draw, regeneration,
//! recovery detection — inside tight wall-clock and memory budgets.
//!
//! This is the root-package twin of the `sim_scale/*` bench rows: the
//! bench gates relative speed (wheel vs reference heap); this test
//! gates absolute cost, so a regression that slowed *both* engines
//! equally would still be caught. Budgets are sized for debug builds on
//! a loaded 1-core CI runner (release runs the same point in well under
//! a second).

use std::time::Instant;

use graybox_experiments::sweep::sweep_point;

/// Peak resident set size of this process in kibibytes, read from
/// `VmHWM` in `/proc/self/status`. `None` off Linux (the budget check
/// is skipped there; CI runs Linux).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn ring_10k_under_token_loss_stays_in_budget() {
    let n = 10_000;
    let theta = u64::from(n) * 4; // mid-grid θ/n from the sweep
    let start = Instant::now();
    let point = sweep_point(n, theta, 2024);
    let wall = start.elapsed();

    // The ring actually worked: events flowed, the killed token was
    // regenerated, and the post-loss demand was served.
    assert!(point.events > u64::from(n), "suspiciously few events");
    assert!(
        point.recovery_ticks.is_some(),
        "10^4-process ring never recovered from token loss"
    );
    assert!(point.msgs_per_grant > 0.0);

    // Wall-clock budget: single-digit seconds even in debug mode.
    assert!(
        wall.as_secs() < 10,
        "10^4-process sweep point took {wall:?} (budget 10s)"
    );

    // Memory budget: the packed per-process state + sparse channels must
    // keep the whole run under half a gigabyte of peak RSS. (VmHWM is a
    // process-lifetime high-water mark, so earlier tests in this binary
    // only make the check stricter.)
    if let Some(kib) = peak_rss_kib() {
        assert!(
            kib < 512 * 1024,
            "peak RSS {kib} KiB exceeds the 512 MiB budget"
        );
    }
}
