//! Tune the wrapper timeout θ: the paper's one quantitative knob.
//!
//! "The timeout mechanism can be employed to tune the wrapper to decrease
//! the unnecessary repetitions of the request messages when the system is
//! in the consistent states." (§4) — this example sweeps θ on the §4
//! deadlock and on a fault-free run, showing the latency/overhead
//! trade-off from both sides.
//!
//! ```sh
//! cargo run --release --example theta_tuning
//! ```

use graybox::faults::{run_tme, scenarios, RunConfig};
use graybox::simnet::SimTime;
use graybox::tme::{Implementation, WorkloadConfig};
use graybox::wrapper::WrapperConfig;

fn main() {
    let thetas = [0u64, 1, 2, 4, 8, 16, 32, 64];

    println!("recovery from the §4 deadlock (3 processes, Ricart–Agrawala):");
    println!(
        "{:>5} {:>18} {:>15}",
        "θ", "recovery (ticks)", "wrapper msgs"
    );
    for &theta in &thetas {
        let config = RunConfig::new(3, Implementation::RicartAgrawala)
            .wrapper(WrapperConfig::timeout(theta))
            .seed(5)
            .horizon(SimTime::from(8_000));
        let (trace, outcome) = scenarios::deadlock(&config);
        let fault_at = trace.last_fault_time().expect("marked");
        println!(
            "{:>5} {:>18} {:>15}",
            theta,
            outcome
                .recovery_ticks(fault_at)
                .map_or("-".into(), |t| t.to_string()),
            outcome.wrapper_resends
        );
    }

    println!();
    println!("fault-free overhead (wrapper messages per CS entry):");
    println!(
        "{:>5} {:>10} {:>15} {:>12}",
        "θ", "entries", "wrapper msgs", "per entry"
    );
    for &theta in &thetas {
        let n = 4;
        let config = RunConfig::new(n, Implementation::RicartAgrawala)
            .wrapper(WrapperConfig::timeout(theta))
            .seed(6)
            .workload(WorkloadConfig {
                n,
                requests_per_process: 5,
                mean_think: 60,
                eat_for: 5,
                start: 1,
            });
        let outcome = run_tme(&config);
        println!(
            "{:>5} {:>10} {:>15} {:>12.2}",
            theta,
            outcome.total_entries,
            outcome.wrapper_resends,
            outcome.wrapper_resends as f64 / outcome.total_entries.max(1) as f64
        );
    }
    println!();
    println!("Pick θ a little above the typical service time: near-zero overhead in");
    println!("legitimate states, recovery within one or two timeout periods.");
}
