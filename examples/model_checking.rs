//! The formal side: model-check the paper's Figure 1, a wrapped toy spec
//! under weakly fair composition, Dijkstra's K-state token ring, and the
//! paper's stated future work — automatic wrapper synthesis.
//!
//! ```sh
//! cargo run --example model_checking
//! ```

use graybox::core::fairness::FairComposition;
use graybox::core::synthesis::{stutter_closure, synthesize_reset_wrapper, verify_wrapper};
use graybox::core::{
    box_compose, dijkstra, everywhere_implements, figure1, implements_from_init, is_stabilizing_to,
    FiniteSystem,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 1 (the counterexample that motivates everywhere specs) ==");
    let (a, c) = figure1::systems();
    println!(
        "  [C => A]_init            : {}",
        implements_from_init(&c, &a)
    );
    println!(
        "  A stabilizing to A       : {}",
        is_stabilizing_to(&a, &a).holds()
    );
    println!("  C stabilizing to A       : {}", is_stabilizing_to(&c, &a));
    println!(
        "  [C => A] (everywhere)    : {}",
        everywhere_implements(&c, &a)
    );
    println!();

    println!("== A wrapper that only helps under weak fairness ==");
    // Spec/impl: state 1 is corrupt; the impl self-loops there forever.
    let spec = FiniteSystem::builder(2)
        .initial(0)
        .edges([(0, 0), (1, 1)])
        .build()?;
    let imp = spec.clone();
    // Wrapper: recover 1 -> 0 (skip at 0).
    let wrapper = FiniteSystem::builder(2)
        .initials([0, 1])
        .edges([(0, 0), (1, 0)])
        .build()?;
    println!(
        "  impl alone stabilizing            : {}",
        is_stabilizing_to(&imp, &spec).holds()
    );
    let pure_union = box_compose(&imp, &wrapper)?;
    println!(
        "  impl ⊓ W, pure path semantics     : {}",
        is_stabilizing_to(&pure_union, &spec).holds()
    );
    let fair = FairComposition::new(vec![imp, wrapper])?;
    println!(
        "  impl ⊓ W, weakly fair composition : {}",
        fair.is_stabilizing_to(&spec).holds()
    );
    println!("  (UNITY's fairness is what makes wrappers effective — see DESIGN.md)");
    println!();

    println!("== Dijkstra's K-state token ring (whitebox stabilization, for contrast) ==");
    for (n, k) in [(2usize, 2usize), (3, 3), (3, 4), (4, 4)] {
        let ring = dijkstra::ring(n, k)?;
        let verdict = ring.stabilizes();
        println!(
            "  n={n} k={k}: {} legitimate states of {}, stabilizing: {}",
            ring.spec().init().len(),
            ring.spec().num_states(),
            verdict.holds()
        );
    }
    println!();

    println!("== Automatic wrapper synthesis (the paper's future work) ==");
    // Synthesize a wrapper for Figure 1's spec A, from A alone.
    let (a, c) = figure1::systems();
    let w = synthesize_reset_wrapper(&a);
    println!(
        "  synthesized W verifies against A      : {}",
        verify_wrapper(&a, &w)?
    );
    // The very C that Figure 1 shows is *not* stabilizing gets repaired:
    let fair = FairComposition::new(vec![c.clone(), w])?;
    println!(
        "  C (Figure 1) ⊓ synthesized W, fairly  : {}",
        fair.is_stabilizing_to(&stutter_closure(&a)).holds()
    );
    println!();
    println!("The ring converges through its own transitions (implementation-level");
    println!("stabilization); the graybox wrapper achieves the same at specification");
    println!("level, without ever reading the implementation — and for finite specs");
    println!("the wrapper can even be synthesized mechanically.");
    Ok(())
}
