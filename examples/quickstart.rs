//! Quickstart: wrap a Ricart–Agrawala mutual-exclusion system with the
//! graybox wrapper, corrupt every process mid-run, and watch it stabilize.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use graybox::faults::{run_tme_trace, FaultKind, FaultPlan, RunConfig};
use graybox::simnet::SimTime;
use graybox::spec::tme_spec;
use graybox::tme::{Implementation, WorkloadConfig};
use graybox::wrapper::WrapperConfig;

fn main() {
    let n = 4;
    let config = RunConfig::new(n, Implementation::RicartAgrawala)
        // The paper's W' with timeout θ = 8: while hungry, every 9 ticks,
        // re-send the request to peers whose local copies look earlier.
        .wrapper(WrapperConfig::timeout(8))
        .seed(2026)
        .workload(WorkloadConfig {
            n,
            requests_per_process: 6,
            mean_think: 50,
            eat_for: 5,
            start: 1,
        })
        // Arbitrary transient state corruption of every process at t=400.
        .faults(FaultPlan::burst(
            FaultKind::CorruptProcess,
            SimTime::from(400),
            n,
        ));

    let (trace, outcome) = run_tme_trace(&config);

    println!("== graybox stabilization quickstart ==");
    println!(
        "{n} Ricart–Agrawala processes, wrapper {}, horizon {}",
        config.wrapper.label(),
        outcome.horizon
    );
    println!(
        "fault burst: {} process-state corruptions at t=400",
        outcome.faults_injected
    );
    println!();
    println!("critical-section grants (time, process, request timestamp):");
    for grant in tme_spec::granted_requests(&trace) {
        let when = if trace
            .last_fault_time()
            .is_some_and(|fault| grant.entry_time > fault)
        {
            "after the burst"
        } else {
            "before the burst"
        };
        println!(
            "  {:>6}  {}  req={}  ({when})",
            grant.entry_time.to_string(),
            grant.pid,
            grant.req
        );
    }
    println!();
    println!("verdict:");
    println!("  stabilized:        {}", outcome.verdict.stabilized);
    println!(
        "  convergence:       {:?} ticks after the last fault",
        outcome.verdict.convergence_ticks
    );
    println!("  ME1 violations:    {}", outcome.verdict.me1_violations);
    println!("  starved processes: {}", outcome.verdict.starved);
    println!("  total CS entries:  {}", outcome.total_entries);
    println!("  wrapper messages:  {}", outcome.wrapper_resends);
    assert!(
        outcome.verdict.stabilized,
        "the wrapped system must stabilize"
    );
}
