//! The paper's §4 deadlock, narrated end to end.
//!
//! Processes 0 and 1 both request the critical section; both request
//! messages are lost. Each side now believes the other's request is
//! earlier (`j.REQ_k lt REQ_j` and `k.REQ_j lt REQ_k`), and `Lspec` asks
//! nothing further of either — a deadlock that is *consistent* with the
//! specification, which is exactly why a level-2 wrapper is needed.
//!
//! ```sh
//! cargo run --example deadlock_recovery
//! ```

use graybox::clock::ProcessId;
use graybox::faults::{scenarios, RunConfig};
use graybox::spec::TraceEventKind;
use graybox::tme::{Implementation, Mode};
use graybox::wrapper::WrapperConfig;

fn narrate(title: &str, config: &RunConfig) {
    println!("== {title} ==");
    let (trace, outcome) = scenarios::deadlock(config);
    let fault_at = trace.last_fault_time().expect("scenario marks its fault");
    let mut shown = 0;
    for step in trace.steps() {
        let interesting = match &step.kind {
            TraceEventKind::Fault { description } => Some(format!("FAULT: {description}")),
            TraceEventKind::Client { event } => Some(format!("client: {event:?}")),
            TraceEventKind::Deliver { from, payload, .. } => {
                (step.time > fault_at).then(|| format!("deliver {payload} from {from}"))
            }
            _ => None,
        };
        // Mode transitions are the story beats.
        let grants: Vec<String> = step
            .snapshots
            .iter()
            .filter(|s| s.mode == Mode::Eating && step.pid == s.pid)
            .map(|s| format!("{} ENTERS the critical section", s.pid))
            .collect();
        if let Some(line) = interesting {
            if shown < 24 || !grants.is_empty() {
                println!("  t={:<5} {} {}", step.time.ticks(), step.pid, line);
                shown += 1;
            }
        }
        for grant in grants {
            println!("  t={:<5} *** {grant}", step.time.ticks());
        }
    }
    println!(
        "  outcome: stabilized={} entries={:?} recovery={:?} ticks wrapper_msgs={}",
        outcome.verdict.stabilized,
        outcome.entries,
        outcome.recovery_ticks(fault_at),
        outcome.wrapper_resends
    );
    println!();
}

fn main() {
    let unwrapped = RunConfig::new(2, Implementation::RicartAgrawala).seed(42);
    narrate("without the wrapper: deadlock forever", &unwrapped);

    let wrapped = RunConfig::new(2, Implementation::RicartAgrawala)
        .wrapper(WrapperConfig::timeout(4))
        .seed(42);
    narrate("with the graybox wrapper W'(θ=4): recovery", &wrapped);

    // Show the final modes explicitly for the unwrapped run.
    let (trace, outcome) = scenarios::deadlock(&unwrapped);
    let last = trace.steps().last().expect("nonempty");
    println!("final modes without wrapper:");
    for pid in ProcessId::all(2) {
        println!("  {pid}: {}", last.snapshots[pid.index()].mode);
    }
    assert!(!outcome.verdict.stabilized);
    let (_, outcome) = scenarios::deadlock(&wrapped);
    assert!(outcome.verdict.stabilized);
    println!("\nThe identical scenario, the identical protocol — only the wrapper differs.");
}
