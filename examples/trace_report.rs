//! Full trace analysis report: run a faulty campaign, then print every
//! checker's verdict — per-conjunct `Lspec` results, `TME_Spec`, the
//! invariant I, convergence, and the service summary.
//!
//! ```sh
//! cargo run --release --example trace_report
//! ```

use graybox::faults::{run_tme_trace, FaultKind, FaultPlan, RunConfig};
use graybox::spec::lspec::DEFAULT_GRACE;
use graybox::spec::report;
use graybox::tme::{Implementation, WorkloadConfig};
use graybox::wrapper::WrapperConfig;

fn main() {
    let n = 4;
    let config = RunConfig::new(n, Implementation::Lamport)
        .wrapper(WrapperConfig::backoff(1, 64))
        .seed(314)
        .workload(WorkloadConfig {
            n,
            requests_per_process: 5,
            mean_think: 45,
            eat_for: 4,
            start: 1,
        })
        .faults(FaultPlan::random_mix(314, (60, 400), 12, &FaultKind::ALL));

    println!(
        "running: {n}×Lamport_ME, wrapper {}, 12 mixed faults…\n",
        config.wrapper.label()
    );
    let (trace, outcome) = run_tme_trace(&config);
    print!("{}", report::render(&trace, DEFAULT_GRACE));
    println!();
    println!(
        "wrapper overhead: {} re-sends across {} grants",
        outcome.wrapper_resends, outcome.total_entries
    );
    assert!(outcome.verdict.stabilized);
}
