//! Corollary 11, live: one wrapper configuration, three independently
//! written implementations of `Lspec`, identical recovery behaviour.
//!
//! The wrapper's code is generic over `LspecView` — it cannot touch
//! Ricart–Agrawala's `received` flags or Lamport's `request_queue` even if
//! it wanted to. Reuse across implementations is therefore a property of
//! the type system, not a testing accident.
//!
//! ```sh
//! cargo run --example reusable_wrapper
//! ```

use graybox::faults::{run_tme, FaultKind, FaultPlan, RunConfig};
use graybox::tme::Implementation;
use graybox::wrapper::WrapperConfig;

fn main() {
    // The one wrapper, written once against the specification.
    let the_wrapper = WrapperConfig::timeout(8);

    println!("one wrapper: {}", the_wrapper.label());
    println!();
    println!(
        "{:<12} {:>11} {:>8} {:>14} {:>13}",
        "impl", "stabilized", "entries", "ME1 violations", "wrapper msgs"
    );
    for implementation in Implementation::ALL {
        let config = RunConfig::new(3, implementation)
            .wrapper(the_wrapper)
            .seed(11)
            .faults(FaultPlan::random_mix(11, (50, 250), 10, &FaultKind::ALL));
        let outcome = run_tme(&config);
        println!(
            "{:<12} {:>11} {:>8} {:>14} {:>13}",
            implementation.label(),
            outcome.verdict.stabilized,
            outcome.total_entries,
            outcome.verdict.me1_violations,
            outcome.wrapper_resends
        );
        assert!(
            outcome.verdict.stabilized,
            "{implementation} must stabilize"
        );
    }
    println!();
    println!("All three implementations stabilized under an identical 10-fault storm,");
    println!("wrapped by byte-for-byte the same wrapper. That is graybox design:");
    println!("the wrapper was derived from Lspec, never from an implementation.");
}
